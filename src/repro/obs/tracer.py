"""Nested-span tracing with a zero-overhead disabled mode.

A :class:`Tracer` records wall-time spans (against the injected
monotonic clock — see :mod:`repro.obs.clock`) plus a
:class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
histograms. The :class:`NullTracer` is the library-wide default: every
instrumented hot path guards its bookkeeping with a single
``tracer.enabled`` attribute check, so an unprofiled run pays one
boolean read per instrumented block and nothing else — the differential
suite (``tests/test_obs_transparency.py``) pins that an enabled tracer
changes *no* result either.

The active tracer is an explicit dynamic scope: :func:`activate` pushes
a tracer for the duration of a ``with`` block and
:func:`active_tracer` reads the innermost one (the shared
:data:`NULL_TRACER` when none is active). Instrumented library code
reads the seam once per call, never caches it across calls, and never
mutates it — so the scope cannot leak across fleet workers (each worker
process activates its own tracer).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import ObsError
from .clock import monotonic_clock
from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "active_tracer",
    "activate",
]


@dataclass(frozen=True)
class Span:
    """One completed (closed) span."""

    name: str
    start_s: float
    end_s: float
    depth: int

    @property
    def duration_s(self) -> float:
        """Span length in seconds; clamped non-negative at close time."""
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (what rides the fleet journal)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "depth": self.depth,
        }


class _NullInstrument:
    """Shared no-op stand-in for every metric kind on the null tracer."""

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the level."""

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def append(self, t: float, value: float) -> None:
        """Discard the sample."""


class _NullMetrics:
    """Registry facade whose instruments swallow every update."""

    _instrument = _NullInstrument()

    def counter(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def gauge(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def histogram(self, name: str, bounds=None) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def series(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return self._instrument

    def to_payload(self) -> Dict[str, Any]:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is False, so correctly guarded instrumentation never
    calls anything here; the methods still exist (and silently discard)
    so an unguarded call site degrades to slow-but-correct instead of
    crashing a production run.
    """

    enabled = False
    metrics = _NullMetrics()

    def start(self, name: str) -> None:
        """Discard the span open."""

    def end(self, name: Optional[str] = None) -> None:
        """Discard the span close."""

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[None]:
        """A no-op context manager."""
        yield

    def count(self, name: str, amount: float = 1) -> None:
        """Discard the count."""

    def spans(self) -> Tuple[Span, ...]:
        """No spans are ever recorded."""
        return ()

    def to_payload(self) -> Dict[str, Any]:
        """An empty trace payload."""
        return {"spans": [], "metrics": self.metrics.to_payload()}


NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans and metrics against an injectable clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic seconds; defaults to
        the process clock from :func:`repro.obs.clock.monotonic_clock`.
        Inject a :class:`~repro.obs.clock.ManualClock` for fully
        deterministic durations.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else monotonic_clock()
        self.metrics = MetricsRegistry()
        self._open: List[Tuple[str, float]] = []
        self._spans: List[Span] = []

    # -- spans ---------------------------------------------------------
    def start(self, name: str) -> None:
        """Open a span; it nests under any span already open."""
        self._open.append((name, self._clock()))

    def end(self, name: Optional[str] = None) -> None:
        """Close the innermost open span.

        Passing ``name`` asserts it is the innermost one; closing with
        nothing open, or out of order, raises
        :class:`~repro.errors.ObsError` — an unbalanced trace would
        silently misattribute every enclosing duration.
        """
        if not self._open:
            label = f"end({name!r})" if name is not None else "end()"
            raise ObsError(f"{label} called with no span open")
        open_name, start_s = self._open.pop()
        if name is not None and name != open_name:
            self._open.append((open_name, start_s))
            raise ObsError(
                f"unbalanced span nesting: end({name!r}) while "
                f"{open_name!r} is the innermost open span"
            )
        # A monotonic clock cannot run backwards; clamp defensively so a
        # misbehaving injected clock still yields duration >= 0.
        end_s = max(self._clock(), start_s)
        self._spans.append(
            Span(
                name=open_name,
                start_s=start_s,
                end_s=end_s,
                depth=len(self._open),
            )
        )

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context-manager form of :meth:`start` / :meth:`end`."""
        self.start(name)
        try:
            yield
        finally:
            self.end(name)

    def spans(self) -> Tuple[Span, ...]:
        """All completed spans, in close order."""
        return tuple(self._spans)

    def open_spans(self) -> Tuple[str, ...]:
        """Names of the currently open spans, outermost first."""
        return tuple(name for name, _ in self._open)

    # -- metrics -------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Shorthand for ``metrics.counter(name).inc(amount)``."""
        self.metrics.counter(name).inc(amount)

    # -- payloads ------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible trace (spans + metrics snapshot).

        Refuses to serialise while spans are still open — a partial
        trace would under-report every open span's duration.
        """
        if self._open:
            raise ObsError(
                "cannot serialise a trace with open spans: "
                + ", ".join(repr(name) for name in self.open_spans())
            )
        return {
            "spans": [span.to_dict() for span in self._spans],
            "metrics": self.metrics.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Tracer":
        """Rebuild a (closed) tracer from its payload."""
        tracer = cls()
        for record in payload.get("spans", ()):
            tracer._spans.append(
                Span(
                    name=record["name"],
                    start_s=float(record["start_s"]),
                    end_s=float(record["end_s"]),
                    depth=int(record.get("depth", 0)),
                )
            )
        tracer.metrics.merge_payload(payload.get("metrics", {}))
        return tracer


# ----------------------------------------------------------------------
# The dynamic scope: which tracer instrumented library code reports to.

_ACTIVE: List[Tracer] = []


def active_tracer() -> "Tracer | NullTracer":
    """The innermost activated tracer, or the shared null tracer."""
    return _ACTIVE[-1] if _ACTIVE else NULL_TRACER


@contextlib.contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the active tracer for the enclosed block."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
