"""The approved clock seam for the observability layer.

Every duration the tracer records flows through a single injectable
callable returning monotonic seconds. Library code never reads a clock
directly — reprolint's RL001 flags ``time.perf_counter()`` /
``time.monotonic()`` outside this module — so swapping the process
clock for a :class:`ManualClock` makes every span duration a pure
function of the test script, and the *absence* of a clock read (the
``NullTracer`` path) is statically checkable.

The process clock is monotonic, never wall time: traces must order
events even across NTP steps, and no library result may depend on the
time of day.
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import ObsError

__all__ = ["monotonic_clock", "ManualClock"]


def monotonic_clock() -> Callable[[], float]:
    """The process-wide monotonic clock as an injectable callable.

    Returns ``time.monotonic`` itself (seconds as float, arbitrary
    epoch) — the only sanctioned way for instrumentation to reach a
    real clock.
    """
    return time.monotonic


class ManualClock:
    """A deterministic injectable clock for tests and replay.

    Starts at ``start`` seconds and moves only when told to: either
    explicitly via :meth:`advance` or implicitly by ``step`` seconds on
    every read. Time never flows backwards — a negative advance raises
    :class:`~repro.errors.ObsError` — so spans timed against a
    ``ManualClock`` can never report negative durations.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        if start < 0.0:
            raise ObsError(f"clock cannot start before zero, got {start}")
        if step < 0.0:
            raise ObsError(f"clock step must be non-negative, got {step}")
        self._now = float(start)
        self._step = float(step)

    @property
    def now(self) -> float:
        """The current reading without advancing."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds``; returns the new reading."""
        if seconds < 0.0:
            raise ObsError(
                f"a monotonic clock cannot go backwards (advance {seconds})"
            )
        self._now += float(seconds)
        return self._now

    def __call__(self) -> float:
        """Read the clock, then auto-advance by the configured step."""
        value = self._now
        self._now += self._step
        return value
