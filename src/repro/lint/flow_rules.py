"""Flow-aware rules (RL101–RL104) over the project-wide semantic index.

Unlike the per-file rules in :mod:`repro.lint.rules`, these run in
phase 2 against a :class:`~repro.lint.semantics.project.ProjectIndex`:
the engine builds (or loads from cache) every module's summary, then
calls :meth:`ProjectRule.run_project` once per reported module. They
catch exactly the violations a per-file check cannot see — a wall-clock
read laundered through a helper in another module, a dB value crossing
a call boundary into a linear-typed parameter, a ``trial()`` whose
commit lives on only some paths, or a worker payload that only *looks*
picklable from the submitting file.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import LintError
from .findings import Finding
from .rules import LintRule, register_rule
from .semantics.model import (
    ModuleSummary,
    unit_of_identifier,
    units_conflict,
)
from .semantics.project import SOURCE_EXEMPT_MODULES, ProjectIndex

__all__ = [
    "ProjectRule",
    "TransitiveDeterminismRule",
    "UnitFlowRule",
    "EngineDisciplineRule",
    "WorkerCaptureRule",
]

# Modules that own the trial/commit and compiled-array vocabulary; the
# discipline RL103 enforces is *about* them, not *in* them.
_ENGINE_MODULES = frozenset({"net/evaluator.py", "net/batch.py", "net/state.py"})
_WRITE_ALLOWED_MODULES = frozenset({"net/state.py", "net/batch.py"})


class ProjectRule(LintRule):
    """A rule that needs the whole-project index, not a single file.

    The engine calls :meth:`run_project` once per module in the
    reporting set after phase 1 has summarised every module in scope;
    per-file :meth:`run` is never invoked for these rules.
    """

    def run(self, module) -> Iterator[Finding]:
        """Project rules have no per-file mode."""
        raise LintError(
            f"rule {type(self).__name__} is project-wide; "
            "it cannot run on a single file"
        )

    def applies_to_summary(self, summary: ModuleSummary) -> bool:
        """Whether this rule checks ``summary`` (exemptions/waivers)."""
        return (
            summary.module not in self.exempt_modules
            and self.rule_id not in summary.waived
        )

    def run_project(
        self, index: ProjectIndex, summary: ModuleSummary
    ) -> Iterator[Finding]:
        """Yield findings for one module; must be overridden."""
        raise LintError(
            f"rule {type(self).__name__} does not implement run_project()"
        )


# ----------------------------------------------------------------------
# RL101 — transitive determinism taint


class TransitiveDeterminismRule(ProjectRule):
    """Flag functions that reach a clock/RNG source through calls."""

    rule_id = "RL101"
    title = "no transitive wall-clock/global-RNG reach through calls"
    rationale = (
        "RL001 catches a direct time.time() or np.random call, but a "
        "helper that wraps one launders the ambient state past the "
        "per-file check — any caller silently loses bit-identical "
        "reproducibility. This rule closes the call graph over every "
        "direct source (outside the approved repro.obs.clock and CLI/"
        "executor seams) and flags each function whose chain reaches "
        "one, carrying the shortest file:line chain for --explain."
    )
    exempt_modules = SOURCE_EXEMPT_MODULES

    def run_project(
        self, index: ProjectIndex, summary: ModuleSummary
    ) -> Iterator[Finding]:
        """Report transitively tainted functions (direct taint is RL001's)."""
        for qual, func in summary.functions.items():
            record = index.taint.get(f"{summary.module}::{qual}")
            if record is None or record.depth < 2:
                continue
            hops = record.depth - 1
            yield Finding(
                path=summary.path,
                line=func.line,
                col=func.col,
                rule_id=self.rule_id,
                message=(
                    f"'{qual}' is transitively non-deterministic: it "
                    f"reaches {record.detail} ({record.kind}) through "
                    f"{hops} call hop(s); run repro lint --explain RL101 "
                    "for the chain"
                ),
                chain=record.chain,
            )


# ----------------------------------------------------------------------
# RL102 — unit flow across call boundaries


class UnitFlowRule(ProjectRule):
    """Flag dB/linear (and other unit-domain) mixes in and across calls."""

    rule_id = "RL102"
    title = "no unit-domain mismatches in arithmetic or across calls"
    rationale = (
        "RL002 bans inline conversion *formulas*; this rule tracks the "
        "values themselves. Identifier conventions (*_dbm, *_db, *_mw, "
        "*_mhz, ...) and the repro.units converter signatures give most "
        "expressions a unit, so adding dBm to dBm (absolute powers do "
        "not add in the log domain), mixing mW into dB arithmetic, or "
        "passing a dB-typed argument to a linear-typed parameter in "
        "another module are all statically visible bugs."
    )
    exempt_modules = frozenset({"units.py"})

    def run_project(
        self, index: ProjectIndex, summary: ModuleSummary
    ) -> Iterator[Finding]:
        """Report local arithmetic conflicts, then cross-call mismatches."""
        for conflict in summary.unit_conflicts:
            yield Finding(
                path=summary.path,
                line=conflict.line,
                col=conflict.col,
                rule_id=self.rule_id,
                message=f"unit-domain conflict: {conflict.detail}",
            )
        for qual, func in summary.functions.items():
            for site in func.calls:
                if site.callee.startswith("@"):
                    continue
                targets = index.resolve_call(
                    summary.module, qual, site.callee
                )
                if len(targets) != 1:
                    continue
                target = index.function(targets[0])
                if target is None:
                    continue
                offset = (
                    1
                    if target.is_method
                    and target.params
                    and target.params[0] in ("self", "cls")
                    else 0
                )
                for position, unit in enumerate(site.arg_units):
                    if unit is None:
                        continue
                    param_index = position + offset
                    if param_index >= len(target.params):
                        break
                    param = target.params[param_index]
                    expected = unit_of_identifier(param)
                    if expected is not None and units_conflict(unit, expected):
                        yield Finding(
                            path=summary.path,
                            line=site.line,
                            col=site.col,
                            rule_id=self.rule_id,
                            message=(
                                f"passes a {unit}-typed value to parameter "
                                f"'{param}' ({expected}) of {target.qual}; "
                                "convert via repro.units first"
                            ),
                        )
                for name, unit in site.kw_units.items():
                    if unit is None or name not in target.params:
                        continue
                    expected = unit_of_identifier(name)
                    if expected is not None and units_conflict(unit, expected):
                        yield Finding(
                            path=summary.path,
                            line=site.line,
                            col=site.col,
                            rule_id=self.rule_id,
                            message=(
                                f"passes a {unit}-typed value to keyword "
                                f"'{name}' ({expected}) of {target.qual}; "
                                "convert via repro.units first"
                            ),
                        )


# ----------------------------------------------------------------------
# RL103 — engine mutation discipline


class EngineDisciplineRule(ProjectRule):
    """Trial calls must resolve on every path; no stray compiled writes."""

    rule_id = "RL103"
    title = "trial/commit pairing and compiled-array write discipline"
    rationale = (
        "The delta/compiled/batched engines stay bit-identical because "
        "every trial() is resolved by a commit/rollback/reset before "
        "control leaves the function, and because CompiledNetwork's "
        "arrays are only mutated inside net/state.py, net/batch.py or "
        "an apply_churn patch path. A trial left dangling on one early "
        "return, or a direct array poke from allocator code, desyncs "
        "the incremental caches the whole engine stack shares."
    )

    def run_project(
        self, index: ProjectIndex, summary: ModuleSummary
    ) -> Iterator[Finding]:
        """Report dangling-trial paths and out-of-bounds array writes."""
        if summary.module not in _ENGINE_MODULES:
            for gap in summary.trial_gaps:
                yield Finding(
                    path=summary.path,
                    line=gap.line,
                    col=gap.col,
                    rule_id=self.rule_id,
                    message=(
                        f"'{gap.func}' calls {gap.detail}() on a path that "
                        "reaches the function exit with no commit/rollback/"
                        "reset; resolve the trial on every path"
                    ),
                )
        if summary.module not in _WRITE_ALLOWED_MODULES:
            for write in summary.compiled_writes:
                if "apply_churn" in write.func:
                    continue
                yield Finding(
                    path=summary.path,
                    line=write.line,
                    col=write.col,
                    rule_id=self.rule_id,
                    message=(
                        f"direct write to CompiledNetwork.{write.detail} "
                        "outside net/state.py, net/batch.py or an "
                        "apply_churn path; mutate through the engine's "
                        "commit seam instead"
                    ),
                )


# ----------------------------------------------------------------------
# RL104 — worker-capture / cross-module picklability


class WorkerCaptureRule(ProjectRule):
    """Worker payloads and registry entries must pickle by reference."""

    rule_id = "RL104"
    title = "worker submissions and registrations must be picklable"
    rationale = (
        "RL005 rejects a lambda registered in the same file; this rule "
        "resolves executor submit() arguments and registry entries "
        "through the project symbol table, so a lambda smuggled in via "
        "an import alias, or a factory call whose return value is a "
        "closure, is caught before a spawn-context worker pool fails "
        "to unpickle it mid-sweep."
    )

    def run_project(
        self, index: ProjectIndex, summary: ModuleSummary
    ) -> Iterator[Finding]:
        """Check submit() payloads and registrations across modules."""
        for qual, func in summary.functions.items():
            for site in func.calls:
                if "." not in site.callee:
                    continue
                if site.callee.split(".")[-1] != "submit":
                    continue
                if not site.arg_refs:
                    continue
                yield from self._check_ref(
                    index,
                    summary,
                    site.line,
                    site.col,
                    site.arg_refs[0],
                    f"'{qual}' submits",
                )
        for registration in summary.registrations:
            yield from self._check_ref(
                index,
                summary,
                registration.line,
                0,
                registration.arg_ref,
                f"{registration.registry} registers",
            )

    def _check_ref(
        self,
        index: ProjectIndex,
        summary: ModuleSummary,
        line: int,
        col: int,
        ref,
        context: str,
    ) -> Iterator[Finding]:
        """Findings for one submit argument / registration target."""
        if ref == "lambda":
            yield Finding(
                path=summary.path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                message=(
                    f"{context} a lambda; worker processes unpickle "
                    "callables by module-qualified name — use a "
                    "module-level def"
                ),
            )
            return
        if not isinstance(ref, str):
            return
        if ref.startswith("call:"):
            factory = ref[len("call:"):]
            if factory.startswith("@"):
                return
            targets = index.resolve_call(summary.module, "", factory)
            if len(targets) != 1:
                return
            target = index.function(targets[0])
            if target is not None and target.returns_closure:
                yield Finding(
                    path=summary.path,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"{context} the result of {target.qual}(), which "
                        "returns a closure; closures cannot be pickled "
                        "into worker processes — pass a module-level def"
                    ),
                )
            return
        if ref.startswith("name:") or ref.startswith("attr:"):
            dotted = ref.split(":", 1)[1]
            parts = dotted.split(".")
            resolved = index.resolve_name(summary.module, parts[0])
            for part in parts[1:]:
                if resolved is None or resolved[0] != "module":
                    resolved = None
                    break
                resolved = index.resolve_name(resolved[1], part)
            if resolved is None or resolved[0] != "value":
                return
            kind, module, name = resolved
            entry = index.summaries[module].symbols.get(name, {})
            if entry.get("kind") == "lambda":
                yield Finding(
                    path=summary.path,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"{context} {dotted!r}, which resolves to a "
                        f"module-level lambda in {module}; lambdas cannot "
                        "be pickled by reference — use a def"
                    ),
                )


register_rule(TransitiveDeterminismRule())
register_rule(UnitFlowRule())
register_rule(EngineDisciplineRule())
register_rule(WorkerCaptureRule())
