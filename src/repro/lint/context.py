"""Per-file context handed to every lint rule.

A :class:`ModuleContext` bundles the parsed AST, the raw source lines
and the file's waiver set, plus the *module path* — the path relative
to the ``repro`` package (``"phy/noise.py"``, ``"cli.py"``) that rules
use for their exemption lists. Files outside a ``repro`` package (e.g.
test fixtures) fall back to their bare filename, which keeps the
exemption machinery testable with temp directories.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import FrozenSet, List

__all__ = ["ModuleContext", "module_path"]


def module_path(path: "pathlib.Path") -> str:
    """Path relative to the innermost ``repro`` package, as posix.

    ``src/repro/phy/noise.py`` → ``"phy/noise.py"``; a file with no
    ``repro`` ancestor directory reduces to its filename.
    """
    parts = path.parts
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return path.name


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to check one source file.

    Attributes
    ----------
    path:
        The file as given on the command line (used in findings).
    module:
        Package-relative path (see :func:`module_path`) used by rule
        exemption lists.
    tree:
        The parsed ``ast.Module``.
    lines:
        Raw source split into lines (1-indexed via ``lines[line - 1]``).
    waived:
        Rule ids waived for this whole file by
        ``# reprolint: ok RLxxx <reason>`` comments.
    """

    path: str
    module: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    waived: FrozenSet[str] = frozenset()
