"""The reprolint engine: file discovery, waivers, rule dispatch.

``lint_paths`` walks the requested files/directories, parses each
module once, extracts its per-file waivers and runs every registered
rule over it, returning a :class:`LintReport`. The report's
``exit_code`` implements the CLI contract: 0 clean, 1 findings;
internal errors (unreadable paths, bad rule selections) raise
:class:`~repro.errors.LintError`, which the CLI maps to exit code 2.

Waiver syntax — one comment anywhere in a file waives the named rules
for that whole file, and the reason is mandatory::

    # reprolint: ok RL002 deliberate PHY-layer spectral math (Fig 1)

Malformed waivers (unknown rule id, missing reason) are themselves
reported as RL000 findings rather than silently honoured.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import LintError
from .context import ModuleContext, module_path
from .findings import Finding, render_json, render_text
from .rules import PARSE_RULE_ID, RULES, WAIVER_RULE_ID, LintRule, default_rules

__all__ = [
    "LintReport",
    "lint_paths",
    "lint_source",
    "iter_python_files",
    "parse_waivers",
]

_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*(?P<verb>[A-Za-z-]+)"
    r"(?P<rules>(?:\s*,?\s*RL\d{3})*)"
    r"(?P<reason>[^#]*)$"
)
_RULE_ID_RE = re.compile(r"RL\d{3}")


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``exit_code`` is 0 when clean and 1 when any finding was produced;
    internal failures never reach a report (they raise
    :class:`~repro.errors.LintError` instead, exit code 2 in the CLI).
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    waivers: int = 0

    @property
    def exit_code(self) -> int:
        """The ``repro lint`` process exit code for this report."""
        return 1 if self.findings else 0

    def render(self, fmt: str = "text") -> str:
        """The report as ``text`` (file:line rows) or ``json``."""
        if fmt == "json":
            return render_json(self.findings, self.files_checked)
        if fmt != "text":
            raise LintError(f"unknown lint output format {fmt!r}")
        body = render_text(self.findings)
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            if self.findings
            else f"clean: {self.files_checked} file(s), {self.waivers} waiver(s)"
        )
        return f"{body}\n{summary}" if body else summary


def iter_python_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[pathlib.Path] = set()
    ordered: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"lint target {path} does not exist")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _comment_tokens(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) for every comment token; docstrings never match."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable tail; ast.parse will surface it as RL900.
        return


def parse_waivers(source: str, path: str) -> Tuple[Set[str], List[Finding], int]:
    """Extract per-file waivers; malformed ones become RL000 findings.

    Only genuine comment tokens are considered (a docstring describing
    the waiver syntax is not a waiver). Returns ``(waived rule ids,
    RL000 findings, well-formed count)``.
    """
    waived: Set[str] = set()
    findings: List[Finding] = []
    count = 0
    for lineno, line in _comment_tokens(source):
        if "reprolint" not in line:
            continue
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        verb = match.group("verb")
        rule_ids = _RULE_ID_RE.findall(match.group("rules") or "")
        reason = (match.group("reason") or "").strip(" \t,:;-")
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        problem = None
        if verb != "ok":
            problem = f"unknown reprolint directive {verb!r}; expected 'ok'"
        elif not rule_ids:
            problem = "waiver names no RLxxx rule id"
        elif not reason:
            problem = "waiver must state a reason after the rule id(s)"
        elif unknown:
            problem = f"waiver names unknown rule(s): {', '.join(unknown)}"
        if problem is not None:
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=0,
                    rule_id=WAIVER_RULE_ID,
                    message=problem,
                )
            )
            continue
        waived.update(rule_ids)
        count += 1
    return waived, findings, count


def _lint_module(
    source: str, path: str, rules: Sequence[LintRule]
) -> Tuple[List[Finding], int]:
    """Lint one module's source; returns (findings, waiver count)."""
    lines = source.splitlines()
    waived, findings, count = parse_waivers(source, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=max(0, (exc.offset or 1) - 1),
                rule_id=PARSE_RULE_ID,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return findings, count
    module = ModuleContext(
        path=path,
        module=module_path(pathlib.Path(path)),
        tree=tree,
        lines=lines,
        waived=frozenset(waived),
    )
    for rule in rules:
        if rule.applies_to(module):
            findings.extend(rule.run(module))
    return findings, count


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one in-memory module; the unit used by tests and fixtures."""
    active = list(default_rules()) if rules is None else list(rules)
    findings, _ = _lint_module(source, path, active)
    return findings


def _select_rules(select: Optional[Sequence[str]]) -> List[LintRule]:
    if select is None:
        return default_rules()
    chosen: List[LintRule] = []
    for rule_id in select:
        if rule_id not in RULES:
            raise LintError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
            )
        chosen.append(RULES[rule_id])
    return chosen


def lint_paths(
    paths: Sequence[pathlib.Path],
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories with the registered (or selected) rules."""
    rules = _select_rules(select)
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        findings, count = _lint_module(str(source), str(path), rules)
        report.findings.extend(findings)
        report.waivers += count
        report.files_checked += 1
    report.findings.sort()
    return report
