"""The reprolint engine: discovery, waivers, two-phase rule dispatch.

``lint_paths`` runs in two phases. Phase 1 parses each module once,
extracts its per-file waivers, runs every per-file rule and distils a
:class:`~repro.lint.semantics.model.ModuleSummary`. Phase 2 stitches
the summaries into a :class:`~repro.lint.semantics.project.ProjectIndex`
and runs the flow-aware :class:`~repro.lint.flow_rules.ProjectRule`
set (RL101–RL104) per module. Both phases replay from the on-disk
incremental cache (``.reprolint-cache.json``): phase-1 results are
keyed by content hash, phase-2 findings by a transitive dependency
fingerprint, so a warm run re-analyses only changed modules and their
reverse dependencies. The cache is bypassed whenever an explicit
``--rules`` selection is active (cached findings assume the full set).

The report's ``exit_code`` implements the CLI contract: 0 clean,
1 findings; internal errors (unreadable paths, bad rule selections)
raise :class:`~repro.errors.LintError`, which the CLI maps to exit
code 2.

Waiver syntax — one comment anywhere in a file waives the named rules
for that whole file, and the reason is mandatory::

    # reprolint: ok RL002 deliberate PHY-layer spectral math (Fig 1)

Malformed waivers (unknown rule id, missing reason) are themselves
reported as RL000 findings rather than silently honoured.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import LintError
from ..obs.clock import monotonic_clock
from .context import ModuleContext, module_path
from .findings import Finding, render_json, render_text
from .flow_rules import ProjectRule
from .rules import PARSE_RULE_ID, RULES, WAIVER_RULE_ID, LintRule, default_rules
from .semantics.cache import (
    cached_summary,
    load_cache,
    rules_fingerprint,
    save_cache,
    source_fingerprint,
)
from .semantics.extract import extract_module
from .semantics.model import ModuleSummary
from .semantics.project import ProjectIndex

__all__ = [
    "LintReport",
    "lint_paths",
    "lint_source",
    "iter_python_files",
    "parse_waivers",
    "changed_scope",
]

# Rule ids may repeat with any mix of commas/whitespace between them
# (``RL003, RL004`` / ``RL003,,RL004`` / ``RL003  RL004`` all parse).
_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*(?P<verb>[A-Za-z-]+)"
    r"(?P<rules>(?:[\s,]*RL\d{3})*)"
    r"(?P<reason>[^#]*)$"
)
_RULE_ID_RE = re.compile(r"RL\d{3}")
_REASON_STRIP = " \t\r\f,:;-"


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``exit_code`` is 0 when clean and 1 when any finding was produced;
    internal failures never reach a report (they raise
    :class:`~repro.errors.LintError` instead, exit code 2 in the CLI).
    ``rule_seconds`` accumulates wall time per rule id (measured with
    the injected monotonic clock), ``files_from_cache`` counts modules
    whose phase-1 analysis replayed from the incremental cache, and
    ``flow_reanalyzed`` counts modules whose phase-2 flow findings had
    to be recomputed (their dependency fingerprint changed).
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    waivers: int = 0
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    files_from_cache: int = 0
    flow_reanalyzed: int = 0

    @property
    def exit_code(self) -> int:
        """The ``repro lint`` process exit code for this report."""
        return 1 if self.findings else 0

    def timing_rows(self) -> List[Tuple[str, float]]:
        """(rule id, seconds) rows, slowest first, for timing tables."""
        return sorted(
            self.rule_seconds.items(), key=lambda row: (-row[1], row[0])
        )

    def render(self, fmt: str = "text") -> str:
        """The report as ``text`` (file:line rows) or ``json``."""
        if fmt == "json":
            return render_json(
                self.findings,
                self.files_checked,
                meta={
                    "rule_seconds": {
                        rule_id: round(seconds, 6)
                        for rule_id, seconds in self.rule_seconds.items()
                    },
                    "cache": {
                        "files_from_cache": self.files_from_cache,
                        "flow_reanalyzed": self.flow_reanalyzed,
                    },
                },
            )
        if fmt != "text":
            raise LintError(f"unknown lint output format {fmt!r}")
        body = render_text(self.findings)
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            if self.findings
            else f"clean: {self.files_checked} file(s), {self.waivers} waiver(s)"
        )
        return f"{body}\n{summary}" if body else summary


def iter_python_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[pathlib.Path] = set()
    ordered: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"lint target {path} does not exist")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _comment_tokens(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) for every comment token; docstrings never match."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable tail; ast.parse will surface it as RL900.
        return


def parse_waivers(source: str, path: str) -> Tuple[Set[str], List[Finding], int]:
    """Extract per-file waivers; malformed ones become RL000 findings.

    Only genuine comment tokens are considered (a docstring describing
    the waiver syntax is not a waiver). Returns ``(waived rule ids,
    RL000 findings, well-formed count)``.
    """
    waived: Set[str] = set()
    findings: List[Finding] = []
    count = 0
    for lineno, line in _comment_tokens(source):
        if "reprolint" not in line:
            continue
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        verb = match.group("verb")
        rule_ids = _RULE_ID_RE.findall(match.group("rules") or "")
        reason = (match.group("reason") or "").strip(_REASON_STRIP)
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        problem = None
        if verb != "ok":
            problem = f"unknown reprolint directive {verb!r}; expected 'ok'"
        elif not rule_ids:
            problem = "waiver names no RLxxx rule id"
        elif not reason:
            problem = "waiver must state a reason after the rule id(s)"
        elif unknown:
            problem = f"waiver names unknown rule(s): {', '.join(unknown)}"
        if problem is not None:
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=0,
                    rule_id=WAIVER_RULE_ID,
                    message=problem,
                )
            )
            continue
        waived.update(rule_ids)
        count += 1
    return waived, findings, count


def _finding_from_dict(data: dict) -> Finding:
    """Rebuild a finding from its cached/JSON dict form."""
    return Finding(
        path=data["path"],
        line=data["line"],
        col=data["col"],
        rule_id=data["rule"],
        message=data["message"],
        chain=tuple(data.get("chain", ())),
    )


def _parse_module(
    source: str, path: str
) -> Tuple[Optional[ModuleContext], List[Finding], int]:
    """Parse one module; a SyntaxError becomes an RL900 finding."""
    waived, findings, count = parse_waivers(source, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=max(0, (exc.offset or 1) - 1),
                rule_id=PARSE_RULE_ID,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return None, findings, count
    module = ModuleContext(
        path=path,
        module=module_path(pathlib.Path(path)),
        tree=tree,
        lines=source.splitlines(),
        waived=frozenset(waived),
    )
    return module, findings, count


def _lint_module(
    source: str,
    path: str,
    rules: Sequence[LintRule],
    rule_seconds: Optional[Dict[str, float]] = None,
) -> Tuple[List[Finding], int, Optional[ModuleContext]]:
    """Run the per-file rules over one module's source."""
    clock = monotonic_clock()
    module, findings, count = _parse_module(source, path)
    if module is None:
        return findings, count, None
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if not rule.applies_to(module):
            continue
        start = clock()
        findings.extend(rule.run(module))
        if rule_seconds is not None:
            rule_seconds[rule.rule_id] = (
                rule_seconds.get(rule.rule_id, 0.0) + clock() - start
            )
    return findings, count, module


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one in-memory module; the unit used by tests and fixtures.

    Runs the per-file rules only — flow rules need a project scope, so
    they are exercised through :func:`lint_paths`.
    """
    active = list(default_rules()) if rules is None else list(rules)
    findings, _, _ = _lint_module(source, path, active)
    return findings


def _select_rules(select: Optional[Sequence[str]]) -> List[LintRule]:
    if select is None:
        return default_rules()
    chosen: List[LintRule] = []
    for rule_id in select:
        if rule_id not in RULES:
            raise LintError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
            )
        chosen.append(RULES[rule_id])
    return chosen


def _read_source(path: pathlib.Path) -> str:
    try:
        return str(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc


def lint_paths(
    paths: Sequence[pathlib.Path],
    select: Optional[Sequence[str]] = None,
    *,
    use_cache: bool = True,
    cache_dir: Optional[pathlib.Path] = None,
    project_paths: Optional[Sequence[pathlib.Path]] = None,
) -> LintReport:
    """Lint files/directories with the registered (or selected) rules.

    ``project_paths`` widens the *analysis* scope beyond the reported
    ``paths`` — cross-module resolution (taint chains, unit flow) sees
    every module in scope while findings are reported only for
    ``paths``; ``repro lint --changed`` uses this to stay correct on a
    subset. The incremental cache lives in ``cache_dir`` (default: the
    current directory) and is bypassed when ``select`` names explicit
    rules, because cached findings assume the full default set.
    """
    rules = _select_rules(select)
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    cache_full = select is None
    clock = monotonic_clock()

    report_files = iter_python_files(paths)
    report_set = {path.resolve() for path in report_files}
    if project_paths:
        scope_files = iter_python_files(list(project_paths))
        scoped = {path.resolve() for path in scope_files}
        scope_files += [
            path for path in report_files if path.resolve() not in scoped
        ]
    else:
        scope_files = report_files

    report = LintReport()
    rules_fp = rules_fingerprint() if use_cache else ""
    cache_root = pathlib.Path(cache_dir) if cache_dir is not None else pathlib.Path.cwd()
    cache = load_cache(cache_root, rules_fp) if use_cache else {}
    new_cache: Dict[str, dict] = {}

    summaries: Dict[str, ModuleSummary] = {}
    entry_by_module: Dict[str, dict] = {}
    reported_modules: Set[str] = set()

    for path in scope_files:
        source = _read_source(path)
        key = path.as_posix()
        source_hash = source_fingerprint(source)
        reportable = path.resolve() in report_set
        entry = cache.get(key)
        summary: Optional[ModuleSummary] = None
        if (
            cache_full
            and isinstance(entry, dict)
            and entry.get("source_hash") == source_hash
        ):
            summary = cached_summary(entry, source_hash)
            reused = summary is not None or entry.get("summary") is None
        else:
            reused = False
        if reused:
            findings = [
                _finding_from_dict(data)
                for data in entry.get("file_findings", [])
            ]
            count = int(entry.get("waiver_count", 0))
            report.files_from_cache += 1
        else:
            findings, count, module = _lint_module(
                source, str(path), file_rules, report.rule_seconds
            )
            if module is not None:
                summary = extract_module(module, source_hash)
            entry = {
                "source_hash": source_hash,
                "file_findings": [finding.to_dict() for finding in findings],
                "waiver_count": count,
                "summary": summary.to_dict() if summary is not None else None,
            }
        new_cache[key] = entry
        if summary is not None:
            summaries[summary.module] = summary
            entry_by_module[summary.module] = entry
            if reportable:
                reported_modules.add(summary.module)
        if reportable:
            report.findings.extend(findings)
            report.waivers += count
            report.files_checked += 1

    if project_rules and summaries:
        index = ProjectIndex(summaries)
        for module_key in sorted(reported_modules):
            summary = summaries[module_key]
            entry = entry_by_module[module_key]
            dep_fp = index.dependency_fingerprint(module_key)
            flow = entry.get("flow") if cache_full else None
            if isinstance(flow, dict) and flow.get("dep_fp") == dep_fp:
                flow_findings = [
                    _finding_from_dict(data)
                    for data in flow.get("findings", [])
                ]
            else:
                report.flow_reanalyzed += 1
                flow_findings = []
                for rule in project_rules:
                    if not rule.applies_to_summary(summary):
                        continue
                    start = clock()
                    flow_findings.extend(rule.run_project(index, summary))
                    report.rule_seconds[rule.rule_id] = (
                        report.rule_seconds.get(rule.rule_id, 0.0)
                        + clock()
                        - start
                    )
                if cache_full:
                    entry["flow"] = {
                        "dep_fp": dep_fp,
                        "findings": [
                            finding.to_dict() for finding in flow_findings
                        ],
                    }
            report.findings.extend(flow_findings)

    if use_cache and cache_full:
        merged = dict(cache)
        merged.update(new_cache)
        save_cache(cache_root, rules_fp, merged)

    report.findings.sort()
    return report


def changed_scope(
    project_paths: Sequence[pathlib.Path],
    changed: Sequence[pathlib.Path],
    *,
    use_cache: bool = True,
    cache_dir: Optional[pathlib.Path] = None,
) -> List[pathlib.Path]:
    """Changed files plus their transitive reverse importers.

    Backs ``repro lint --changed``: the import graph built from (cached)
    module summaries maps each changed file to every module that could
    observe the change, so linting that expanded set is sound without
    re-linting the whole tree. Changed paths outside ``project_paths``
    are ignored; deleted files simply no longer appear.
    """
    files = iter_python_files(list(project_paths))
    rules_fp = rules_fingerprint() if use_cache else ""
    cache_root = pathlib.Path(cache_dir) if cache_dir is not None else pathlib.Path.cwd()
    cache = load_cache(cache_root, rules_fp) if use_cache else {}
    summaries: Dict[str, ModuleSummary] = {}
    path_by_module: Dict[str, pathlib.Path] = {}
    for path in files:
        source = _read_source(path)
        source_hash = source_fingerprint(source)
        summary = cached_summary(cache.get(path.as_posix()), source_hash)
        if summary is None:
            module, _, _ = _parse_module(source, str(path))
            if module is None:
                continue
            summary = extract_module(module, source_hash)
        summaries[summary.module] = summary
        path_by_module[summary.module] = path
    index = ProjectIndex(summaries)
    changed_resolved = {pathlib.Path(p).resolve() for p in changed}
    changed_modules = [
        module
        for module, path in path_by_module.items()
        if path.resolve() in changed_resolved
    ]
    scope = index.expand_changed(changed_modules)
    scope.update(changed_modules)
    return sorted(path_by_module[module] for module in scope)
