"""reprolint — AST-based invariant checking for the reproduction.

The test suite proves the code computes the right numbers today;
``repro lint`` proves the *structure* that keeps them right is still in
place: explicit RNG plumbing (bit-identical sweeps at any worker
count), centralised dB/linear conversions (the 3 dB channel-bonding
penalty survives refactors), the ``ReproError`` exit-code contract,
no stray stdout, picklable registries and an honest ``__all__``.

The check runs in two phases. Phase 1 applies the per-file rules
(RL001–RL006) and extracts a semantic summary per module
(:mod:`repro.lint.semantics`); phase 2 links the summaries into a
project-wide call graph and runs the flow rules: RL101 transitive
determinism taint, RL102 unit-domain flow, RL103 engine trial/commit
discipline, RL104 worker-payload picklability. Results replay from an
incremental on-disk cache (``.reprolint-cache.json``) keyed on content
hashes and transitive dependency fingerprints.

Run it as ``repro lint [paths...]`` (exit 0 clean / 1 findings /
2 internal error) or programmatically::

    from repro.lint import lint_paths

    report = lint_paths(["src/repro"])
    for finding in report.findings:
        ...  # finding.path, finding.line, finding.rule_id, finding.message

Rules live in a registry (:data:`~repro.lint.rules.RULES`); see
``docs/LINT_RULES.md`` for the catalogue and the waiver syntax.
"""

from .context import ModuleContext, module_path
from .engine import (
    LintReport,
    changed_scope,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_waivers,
)
from .findings import Finding, render_json, render_text
from .flow_rules import ProjectRule
from .rules import (
    PARSE_RULE_ID,
    RULES,
    WAIVER_RULE_ID,
    LintRule,
    default_rules,
    register_rule,
    rule_catalog,
)

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "ProjectRule",
    "RULES",
    "WAIVER_RULE_ID",
    "PARSE_RULE_ID",
    "changed_scope",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_path",
    "parse_waivers",
    "register_rule",
    "render_json",
    "render_text",
    "rule_catalog",
]
