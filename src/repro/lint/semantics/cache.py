"""On-disk incremental cache for the semantic layer.

``.reprolint-cache.json`` stores, per module: the source content hash,
the phase-1 :class:`~repro.lint.semantics.model.ModuleSummary` (so a
warm run skips parsing and extraction for unchanged files), and the
phase-2 flow findings keyed by a *dependency fingerprint* — a hash of
the module's own and every transitive import dependency's content hash.
Editing a leaf module therefore invalidates exactly that module plus
its reverse dependencies; everything else replays from cache.

The whole file is additionally keyed on a fingerprint of the lint
package's own sources (``rules_fp``): upgrading any rule or the
extractor silently discards the cache. A corrupt, truncated, stale or
version-mismatched cache is treated as absent — lint output must never
depend on cache health, only its speed may.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, Optional

from .model import ModuleSummary

__all__ = [
    "CACHE_FILENAME",
    "CACHE_VERSION",
    "source_fingerprint",
    "rules_fingerprint",
    "load_cache",
    "save_cache",
    "cached_summary",
]

CACHE_FILENAME = ".reprolint-cache.json"
CACHE_VERSION = 1


def source_fingerprint(source: str) -> str:
    """Content hash of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_fingerprint() -> str:
    """Hash of the lint package's own sources (rules + semantics).

    Any change to a rule, the extractor or the cache format itself must
    invalidate every cached summary and finding.
    """
    package_dir = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(package_dir).as_posix().encode())
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
    return digest.hexdigest()


def load_cache(cache_dir: pathlib.Path, rules_fp: str) -> Dict[str, dict]:
    """The per-module cache map, or ``{}`` on any problem (silent).

    A missing file, malformed JSON, wrong version or a rules-module
    fingerprint mismatch all yield an empty cache — the caller falls
    back to a full cold analysis.
    """
    path = pathlib.Path(cache_dir) / CACHE_FILENAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict):
        return {}
    if data.get("version") != CACHE_VERSION or data.get("rules_fp") != rules_fp:
        return {}
    modules = data.get("modules")
    return modules if isinstance(modules, dict) else {}


def save_cache(
    cache_dir: pathlib.Path, rules_fp: str, modules: Dict[str, dict]
) -> None:
    """Persist the per-module cache map; IO failures are non-fatal."""
    path = pathlib.Path(cache_dir) / CACHE_FILENAME
    payload = {
        "version": CACHE_VERSION,
        "rules_fp": rules_fp,
        "modules": modules,
    }
    try:
        path.write_text(json.dumps(payload), encoding="utf-8")
    except OSError:
        # Read-only checkout or race: the cache is an optimisation only.
        return


def cached_summary(
    entry: Optional[dict], source_hash: str
) -> Optional[ModuleSummary]:
    """Rebuild a cached phase-1 summary if its content hash matches."""
    if not isinstance(entry, dict):
        return None
    if entry.get("source_hash") != source_hash:
        return None
    summary = entry.get("summary")
    if not isinstance(summary, dict):
        return None
    try:
        return ModuleSummary.from_dict(summary)
    except (KeyError, TypeError, ValueError, AttributeError):
        return None
