"""Data model for the reprolint semantic layer.

Phase 1 of the two-phase analysis distils every module into a
:class:`ModuleSummary` — symbol table, internal import dependencies,
per-function :class:`FunctionSummary` records (call sites, determinism
taint sources, unit facts) and the intra-procedural findings that the
flow rules later filter by module (trial/commit gaps, compiled-array
writes, unit-domain conflicts). Summaries are plain-data and round-trip
through JSON dicts, which is what makes the on-disk incremental cache
(:mod:`repro.lint.semantics.cache`) possible: a warm run rebuilds the
whole-project index from cached summaries without re-parsing a single
unchanged file.

Unit vocabulary: identifiers ending in ``_db``/``_dbm`` carry
log-domain power units, ``_mw``/``_watts``/``_linear`` linear-domain
power, ``_hz``/``_mhz`` frequency and ``_mbps``/``_bps`` data rate —
the same conventions :mod:`repro.units` encodes in its converter names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CallSite",
    "FunctionSummary",
    "ClassInfo",
    "Registration",
    "IntraFinding",
    "ModuleSummary",
    "unit_of_identifier",
    "unit_domain",
    "units_conflict",
    "UNIT_SUFFIXES",
    "CONVERTER_RETURNS",
]

# Identifier suffix → unit tag. Longest suffixes first so ``_dbm``
# wins over ``_db`` and ``_mbps`` over ``_bps``.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_dbm", "dbm"),
    ("_db", "db"),
    ("_mw", "mw"),
    ("_watts", "watts"),
    ("_linear", "linear"),
    ("_mhz", "mhz"),
    ("_hz", "hz"),
    ("_mbps", "mbps"),
    ("_bps", "bps"),
)

# Return units of the repro.units converter surface (and any function
# whose name ends in a unit suffix, handled by unit_of_identifier).
CONVERTER_RETURNS: Dict[str, str] = {
    "dbm_to_mw": "mw",
    "mw_to_dbm": "dbm",
    "dbm_to_watts": "watts",
    "watts_to_dbm": "dbm",
    "db_to_linear": "linear",
    "linear_to_db": "db",
    "db_to_amplitude": "linear",
    "amplitude_to_db": "db",
    "add_powers_dbm": "dbm",
    "noise_floor_dbm": "dbm",
    "mhz_to_hz": "hz",
    "hz_to_mhz": "mhz",
    "mbps_to_bps": "bps",
    "bps_to_mbps": "mbps",
}

# Unit → dimension. Log/linear power domains are kept distinct so a
# cross-domain mix is a conflict while db↔dbm (gain applied to an
# absolute power) is not.
_DOMAINS: Dict[str, str] = {
    "db": "power-log",
    "dbm": "power-log",
    "mw": "power-linear",
    "watts": "power-linear",
    "linear": "power-linear",
    "hz": "frequency",
    "mhz": "frequency",
    "mbps": "rate",
    "bps": "rate",
}


def unit_of_identifier(name: str) -> Optional[str]:
    """The unit tag carried by an identifier's suffix, if any."""
    for suffix, unit in UNIT_SUFFIXES:
        if name.endswith(suffix):
            return unit
    return None


def unit_domain(unit: str) -> str:
    """The dimension bucket (``power-log``, ``frequency``, ...) of a unit."""
    return _DOMAINS.get(unit, unit)


def units_conflict(given: str, expected: str) -> bool:
    """Whether passing ``given`` where ``expected`` is required is a bug.

    Log-domain power units (``db``/``dbm``) are mutually compatible —
    gains are routinely added to absolute powers — but every other
    differing pair (``mw`` vs ``dbm``, ``hz`` vs ``mhz``, ``mbps`` vs
    ``bps``, or a cross-dimension mix) conflicts.
    """
    if given == expected:
        return False
    if unit_domain(given) == "power-log" and unit_domain(expected) == "power-log":
        return False
    return True


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the raw dotted text of the call target (``"helper"``,
    ``"np.random.rand"``, ``"self.trial"``) or the registry marker
    ``"@registry:NAME"`` for subscripted registry dispatch
    (``SCENARIOS[name](...)``). ``arg_units``/``kw_units`` record the
    inferred unit of each argument expression (``None`` when unknown)
    and ``arg_refs`` how each positional argument is formed
    (``"name:x"``, ``"attr:mod.f"``, ``"lambda"``, ``"call:factory"``)
    for the worker-capture analysis.
    """

    callee: str
    line: int
    col: int
    arg_units: List[Optional[str]] = field(default_factory=list)
    kw_units: Dict[str, Optional[str]] = field(default_factory=dict)
    arg_refs: List[Optional[str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-compatible form for the incremental cache."""
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "arg_units": self.arg_units,
            "kw_units": self.kw_units,
            "arg_refs": self.arg_refs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        """Rebuild a call site from its cached dict form."""
        return cls(
            callee=data["callee"],
            line=data["line"],
            col=data["col"],
            arg_units=list(data.get("arg_units", [])),
            kw_units=dict(data.get("kw_units", {})),
            arg_refs=list(data.get("arg_refs", [])),
        )


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function.

    ``qual`` is the in-module qualified name (``"f"`` or
    ``"Class.method"``); ``taints`` lists the determinism-taint sources
    the body reads directly (wall clocks, global RNG state) as
    ``{"kind", "detail", "line"}`` records.
    """

    name: str
    qual: str
    line: int
    col: int
    params: List[str] = field(default_factory=list)
    is_method: bool = False
    returns_unit: Optional[str] = None
    returns_closure: bool = False
    taints: List[dict] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-compatible form for the incremental cache."""
        return {
            "name": self.name,
            "qual": self.qual,
            "line": self.line,
            "col": self.col,
            "params": self.params,
            "is_method": self.is_method,
            "returns_unit": self.returns_unit,
            "returns_closure": self.returns_closure,
            "taints": self.taints,
            "calls": [call.to_dict() for call in self.calls],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        """Rebuild a function summary from its cached dict form."""
        return cls(
            name=data["name"],
            qual=data["qual"],
            line=data["line"],
            col=data["col"],
            params=list(data.get("params", [])),
            is_method=bool(data.get("is_method", False)),
            returns_unit=data.get("returns_unit"),
            returns_closure=bool(data.get("returns_closure", False)),
            taints=list(data.get("taints", [])),
            calls=[CallSite.from_dict(c) for c in data.get("calls", [])],
        )


@dataclass
class ClassInfo:
    """A class definition: its methods and raw base-class names."""

    name: str
    line: int
    methods: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-compatible form for the incremental cache."""
        return {
            "name": self.name,
            "line": self.line,
            "methods": self.methods,
            "bases": self.bases,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassInfo":
        """Rebuild class info from its cached dict form."""
        return cls(
            name=data["name"],
            line=data["line"],
            methods=list(data.get("methods", [])),
            bases=list(data.get("bases", [])),
        )


@dataclass
class Registration:
    """One ``register_*``/registry-dict entry binding a name to a target.

    ``arg_ref`` uses the same encoding as :attr:`CallSite.arg_refs` so
    the worker-capture rule can resolve the registered object across
    modules.
    """

    registry: str
    line: int
    name_const: Optional[str] = None
    arg_ref: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-compatible form for the incremental cache."""
        return {
            "registry": self.registry,
            "line": self.line,
            "name_const": self.name_const,
            "arg_ref": self.arg_ref,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Registration":
        """Rebuild a registration record from its cached dict form."""
        return cls(
            registry=data["registry"],
            line=data["line"],
            name_const=data.get("name_const"),
            arg_ref=data.get("arg_ref"),
        )


@dataclass
class IntraFinding:
    """An intra-procedural fact a flow rule may turn into a finding.

    Used for trial/commit path gaps (RL103), compiled-array writes
    (RL103) and unit-domain conflicts in local arithmetic (RL102);
    ``func`` names the enclosing function's qualified name.
    """

    line: int
    col: int
    detail: str
    func: str = ""

    def to_dict(self) -> dict:
        """JSON-compatible form for the incremental cache."""
        return {
            "line": self.line,
            "col": self.col,
            "detail": self.detail,
            "func": self.func,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntraFinding":
        """Rebuild an intra-procedural fact from its cached dict form."""
        return cls(
            line=data["line"],
            col=data["col"],
            detail=data["detail"],
            func=data.get("func", ""),
        )


@dataclass
class ModuleSummary:
    """Phase-1 product for one module; the unit of cache reuse.

    ``module`` is the package-relative path (``"core/allocation.py"``),
    ``dotted`` the dotted module name (``"repro.core.allocation"``),
    ``dep_modules`` the dotted names of internal modules this one
    imports (the import-graph edge list), ``symbols`` the module-level
    name table (``kind`` one of ``def``/``class``/``lambda``/``alias``/
    ``assign``; aliases carry ``target`` as ``"dotted.module"`` or
    ``"dotted.module:symbol"``).
    """

    module: str
    path: str
    dotted: str
    source_hash: str = ""
    waived: List[str] = field(default_factory=list)
    dep_modules: List[str] = field(default_factory=list)
    symbols: Dict[str, dict] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    registrations: List[Registration] = field(default_factory=list)
    trial_gaps: List[IntraFinding] = field(default_factory=list)
    unit_conflicts: List[IntraFinding] = field(default_factory=list)
    compiled_writes: List[IntraFinding] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-compatible form for the incremental cache."""
        return {
            "module": self.module,
            "path": self.path,
            "dotted": self.dotted,
            "source_hash": self.source_hash,
            "waived": self.waived,
            "dep_modules": self.dep_modules,
            "symbols": self.symbols,
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "registrations": [r.to_dict() for r in self.registrations],
            "trial_gaps": [g.to_dict() for g in self.trial_gaps],
            "unit_conflicts": [u.to_dict() for u in self.unit_conflicts],
            "compiled_writes": [w.to_dict() for w in self.compiled_writes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        """Rebuild a module summary from its cached dict form."""
        return cls(
            module=data["module"],
            path=data["path"],
            dotted=data["dotted"],
            source_hash=data.get("source_hash", ""),
            waived=list(data.get("waived", [])),
            dep_modules=list(data.get("dep_modules", [])),
            symbols=dict(data.get("symbols", {})),
            classes={
                k: ClassInfo.from_dict(v)
                for k, v in data.get("classes", {}).items()
            },
            functions={
                k: FunctionSummary.from_dict(v)
                for k, v in data.get("functions", {}).items()
            },
            registrations=[
                Registration.from_dict(r) for r in data.get("registrations", [])
            ],
            trial_gaps=[
                IntraFinding.from_dict(g) for g in data.get("trial_gaps", [])
            ],
            unit_conflicts=[
                IntraFinding.from_dict(u) for u in data.get("unit_conflicts", [])
            ],
            compiled_writes=[
                IntraFinding.from_dict(w) for w in data.get("compiled_writes", [])
            ],
        )
