"""Project-wide semantic analysis layer for reprolint (phase 1 + 2).

Phase 1 (:mod:`~repro.lint.semantics.extract`) distils every module
into a cacheable :class:`~repro.lint.semantics.model.ModuleSummary`;
phase 2 (:mod:`~repro.lint.semantics.project`) resolves them into a
project-wide :class:`~repro.lint.semantics.project.ProjectIndex` — the
call graph, import graph and determinism-taint closure the RL101–RL104
flow rules consume. :mod:`~repro.lint.semantics.cache` persists both
phases to ``.reprolint-cache.json`` for warm incremental runs.
"""

from __future__ import annotations

from .cache import (
    CACHE_FILENAME,
    load_cache,
    rules_fingerprint,
    save_cache,
    source_fingerprint,
)
from .extract import dotted_name, extract_module
from .model import (
    CallSite,
    ClassInfo,
    FunctionSummary,
    IntraFinding,
    ModuleSummary,
    Registration,
    unit_of_identifier,
    units_conflict,
)
from .project import SOURCE_EXEMPT_MODULES, ProjectIndex, TaintRecord

__all__ = [
    "CACHE_FILENAME",
    "CallSite",
    "ClassInfo",
    "FunctionSummary",
    "IntraFinding",
    "ModuleSummary",
    "ProjectIndex",
    "Registration",
    "SOURCE_EXEMPT_MODULES",
    "TaintRecord",
    "dotted_name",
    "extract_module",
    "load_cache",
    "rules_fingerprint",
    "save_cache",
    "source_fingerprint",
    "unit_of_identifier",
    "units_conflict",
]
