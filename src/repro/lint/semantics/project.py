"""Whole-project resolution (phase 2 substrate of the semantic layer).

:class:`ProjectIndex` stitches per-module
:class:`~repro.lint.semantics.model.ModuleSummary` records into the
project-wide facts the flow rules consume:

* a symbol resolver that follows import aliases (absolute and relative,
  including re-export chains through ``__init__`` modules) to the
  defining module;
* a call graph — module-level calls, ``self.``/``cls.`` method dispatch
  through class definitions and their bases, registry-subscript dispatch
  (``SCENARIOS[name](...)`` fans out to every registration), and a
  unique-method-name fallback for attribute calls on unannotated
  receivers (suppressed for ubiquitous container/stdlib method names);
* the internal import graph with transitive reverse dependencies (the
  ``--changed`` expansion set and the cache's invalidation frontier);
* a determinism-taint closure: BFS from every direct clock/RNG source
  backwards over call edges, recording the shortest offending chain as
  ``file:line`` hops for ``repro lint --explain``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .model import FunctionSummary, ModuleSummary

__all__ = ["ProjectIndex", "TaintRecord", "SOURCE_EXEMPT_MODULES"]

# Modules allowed to read ambient time / RNG directly (the RL001 seams):
# their sources neither seed the transitive closure nor get reported.
SOURCE_EXEMPT_MODULES = frozenset(
    {"cli.py", "__main__.py", "fleet/executor.py", "obs/clock.py"}
)

# Attribute names so common on containers/stdlib objects that a
# unique-method fallback edge would be noise rather than dispatch.
_FALLBACK_DENYLIST = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "index",
        "count",
        "sort",
        "reverse",
        "copy",
        "get",
        "items",
        "keys",
        "values",
        "update",
        "setdefault",
        "add",
        "discard",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "encode",
        "decode",
        "read",
        "write",
        "readline",
        "close",
        "flush",
        "submit",
        "result",
        "shutdown",
        "cancel",
        "acquire",
        "release",
        "wait",
        "notify",
        "put",
        "run",
        "mean",
        "std",
        "sum",
        "astype",
        "reshape",
        "ravel",
        "tolist",
        "fill",
        "dot",
    }
)

_MAX_ALIAS_DEPTH = 8


class TaintRecord:
    """Why one function is determinism-tainted, with the shortest chain.

    ``chain`` is a tuple of human-readable ``file:line`` hops from the
    function down to the raw source read; ``depth`` counts functions on
    the chain (1 = the function reads the source directly).
    """

    __slots__ = ("kind", "detail", "chain", "depth")

    def __init__(
        self, kind: str, detail: str, chain: Tuple[str, ...], depth: int
    ) -> None:
        self.kind = kind
        self.detail = detail
        self.chain = chain
        self.depth = depth


class ProjectIndex:
    """Cross-module resolution over a set of module summaries.

    Function keys are ``"<module>::<qual>"`` with ``module`` the
    package-relative path (``"core/allocation.py::Acorn.configure"``).
    """

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.by_dotted: Dict[str, ModuleSummary] = {}
        for summary in summaries.values():
            self.by_dotted[summary.dotted] = summary
        self._method_owners: Dict[str, List[Tuple[str, str]]] = {}
        for module, summary in summaries.items():
            for cls in summary.classes.values():
                for method in cls.methods:
                    self._method_owners.setdefault(method, []).append(
                        (module, f"{cls.name}.{method}")
                    )
        self.import_graph = self._build_import_graph()
        self.reverse_graph = self._invert(self.import_graph)
        self.call_graph = self._build_call_graph()
        self.taint = self._taint_closure()

    # -- basic lookups -------------------------------------------------

    def function(self, key: str) -> Optional[FunctionSummary]:
        """The summary behind a ``module::qual`` function key."""
        module, _, qual = key.partition("::")
        summary = self.summaries.get(module)
        if summary is None:
            return None
        return summary.functions.get(qual)

    # -- import graph --------------------------------------------------

    def _build_import_graph(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {m: set() for m in self.summaries}
        for module, summary in self.summaries.items():
            for dep in summary.dep_modules:
                target = self.by_dotted.get(dep)
                if target is not None and target.module != module:
                    graph[module].add(target.module)
        return graph

    @staticmethod
    def _invert(graph: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
        inverted: Dict[str, Set[str]] = {m: set() for m in graph}
        for module, deps in graph.items():
            for dep in deps:
                inverted.setdefault(dep, set()).add(module)
        return inverted

    def transitive_deps(self, module: str) -> Set[str]:
        """All modules ``module`` depends on, transitively (cycles ok)."""
        return self._reachable(module, self.import_graph)

    def reverse_dependencies(self, module: str) -> Set[str]:
        """All modules that (transitively) import ``module``."""
        return self._reachable(module, self.reverse_graph)

    @staticmethod
    def _reachable(start: str, graph: Dict[str, Set[str]]) -> Set[str]:
        seen: Set[str] = set()
        stack = list(graph.get(start, ()))
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(graph.get(module, ()))
        seen.discard(start)
        return seen

    def dependency_fingerprint(self, module: str) -> str:
        """Hash of the module's own and transitive deps' source hashes.

        The phase-2 cache key: flow findings for a module can be reused
        exactly when nothing it can observe through imports changed.
        """
        import hashlib

        parts = [f"{module}={self.summaries[module].source_hash}"]
        for dep in sorted(self.transitive_deps(module)):
            parts.append(f"{dep}={self.summaries[dep].source_hash}")
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    # -- symbol resolution ---------------------------------------------

    def _resolve_alias(
        self, target: str, depth: int = 0
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve an alias target to ``(kind, module, name)``.

        ``kind`` is ``"func"``, ``"class"``, ``"value"`` or
        ``"module"`` (``name`` empty for modules). Re-export chains are
        followed up to a fixed depth; unresolvable (external) targets
        return ``None``.
        """
        if depth > _MAX_ALIAS_DEPTH:
            return None
        dotted, _, symbol = target.partition(":")
        if not symbol:
            summary = self.by_dotted.get(dotted)
            if summary is not None:
                return ("module", summary.module, "")
            return None
        summary = self.by_dotted.get(dotted)
        if summary is not None:
            entry = summary.symbols.get(symbol)
            if entry is not None:
                kind = entry.get("kind")
                if kind == "def":
                    return ("func", summary.module, symbol)
                if kind == "class":
                    return ("class", summary.module, symbol)
                if kind == "alias":
                    return self._resolve_alias(entry["target"], depth + 1)
                if kind in ("lambda", "assign"):
                    return ("value", summary.module, symbol)
        submodule = self.by_dotted.get(f"{dotted}.{symbol}")
        if submodule is not None:
            return ("module", submodule.module, "")
        return None

    def resolve_name(
        self, module: str, name: str, depth: int = 0
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve a bare name in a module to ``(kind, module, name)``."""
        summary = self.summaries.get(module)
        if summary is None:
            return None
        entry = summary.symbols.get(name)
        if entry is None:
            return None
        kind = entry.get("kind")
        if kind == "def":
            return ("func", module, name)
        if kind == "class":
            return ("class", module, name)
        if kind == "alias":
            return self._resolve_alias(entry["target"], depth + 1)
        if kind in ("lambda", "assign"):
            return ("value", module, name)
        return None

    def _method_in_class(
        self, module: str, class_name: str, method: str, depth: int = 0
    ) -> Optional[str]:
        """Find ``method`` on a class or its bases; returns a func key."""
        if depth > _MAX_ALIAS_DEPTH:
            return None
        summary = self.summaries.get(module)
        if summary is None:
            return None
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        if method in cls.methods:
            return f"{module}::{class_name}.{method}"
        for base in cls.bases:
            head = base.split(".")[0]
            resolved = self.resolve_name(module, head)
            if resolved is None:
                continue
            kind, base_module, base_name = resolved
            if kind == "class":
                found = self._method_in_class(
                    base_module, base_name, method, depth + 1
                )
                if found is not None:
                    return found
            elif kind == "module" and "." in base:
                tail = base.split(".")[-1]
                found = self._method_in_class(
                    base_module, tail, method, depth + 1
                )
                if found is not None:
                    return found
        return None

    def resolve_call(
        self, module: str, caller_qual: str, callee: str
    ) -> List[str]:
        """Function keys a call site may dispatch to (empty if unknown)."""
        if callee == "@dynamic":
            return []
        if callee.startswith("@registry:"):
            return self._resolve_registry(callee[len("@registry:"):])
        parts = callee.split(".")
        head = parts[0]
        if head in ("self", "cls") and "." in caller_qual and len(parts) == 2:
            class_name = caller_qual.split(".")[0]
            found = self._method_in_class(module, class_name, parts[1])
            return [found] if found is not None else []
        resolved = self.resolve_name(module, head)
        if resolved is not None:
            kind, target_module, target_name = resolved
            rest = parts[1:]
            while rest and kind == "module":
                step = self.resolve_name(target_module, rest[0])
                if step is None:
                    return []
                kind, target_module, target_name = step
                rest = rest[1:]
            if kind == "func" and not rest:
                return [f"{target_module}::{target_name}"]
            if kind == "class":
                if not rest:
                    init = self._method_in_class(
                        target_module, target_name, "__init__"
                    )
                    return [init] if init is not None else []
                if len(rest) == 1:
                    found = self._method_in_class(
                        target_module, target_name, rest[0]
                    )
                    return [found] if found is not None else []
            return []
        # Unannotated receiver (`engine.trial_index(...)`): dispatch to
        # the unique project class defining that method name.
        if len(parts) >= 2:
            tail = parts[-1]
            if tail not in _FALLBACK_DENYLIST:
                owners = self._method_owners.get(tail, [])
                if len(owners) == 1:
                    owner_module, qual = owners[0]
                    return [f"{owner_module}::{qual}"]
        return []

    def _resolve_registry(self, registry: str) -> List[str]:
        """Every function a registry subscript call can dispatch to."""
        targets: List[str] = []
        for module, summary in self.summaries.items():
            for registration in summary.registrations:
                if registration.registry != registry:
                    continue
                key = self._resolve_arg_ref(module, registration.arg_ref)
                if key is not None:
                    targets.append(key)
        return targets

    def _resolve_arg_ref(
        self, module: str, arg_ref: Optional[str]
    ) -> Optional[str]:
        """A function key from a CallSite/Registration arg encoding."""
        if arg_ref is None or arg_ref in ("lambda", "const"):
            return None
        if arg_ref.startswith("name:"):
            resolved = self.resolve_name(module, arg_ref[len("name:"):])
        elif arg_ref.startswith("attr:"):
            dotted = arg_ref[len("attr:"):]
            parts = dotted.split(".")
            resolved = self.resolve_name(module, parts[0])
            for part in parts[1:]:
                if resolved is None or resolved[0] != "module":
                    return None
                resolved = self.resolve_name(resolved[1], part)
        else:
            return None
        if resolved is None:
            return None
        kind, target_module, target_name = resolved
        if kind == "func":
            return f"{target_module}::{target_name}"
        return None

    # -- call graph & taint closure ------------------------------------

    def _build_call_graph(self) -> Dict[str, List[Tuple[str, int]]]:
        """caller key → [(callee key, call line)] over every call site."""
        graph: Dict[str, List[Tuple[str, int]]] = {}
        for module, summary in self.summaries.items():
            for qual, func in summary.functions.items():
                key = f"{module}::{qual}"
                edges: List[Tuple[str, int]] = []
                for site in func.calls:
                    for target in self.resolve_call(module, qual, site.callee):
                        edges.append((target, site.line))
                graph[key] = edges
        return graph

    def _taint_closure(self) -> Dict[str, TaintRecord]:
        """Shortest-chain determinism taint for every affected function."""
        taint: Dict[str, TaintRecord] = {}
        queue: deque = deque()
        for module, summary in self.summaries.items():
            if module in SOURCE_EXEMPT_MODULES:
                continue
            for qual, func in summary.functions.items():
                if not func.taints:
                    continue
                source = func.taints[0]
                key = f"{module}::{qual}"
                taint[key] = TaintRecord(
                    kind=source.get("kind", "taint"),
                    detail=source.get("detail", ""),
                    chain=(
                        f"{summary.path}:{source.get('line', func.line)} "
                        f"{qual} reads {source.get('detail', '?')}",
                    ),
                    depth=1,
                )
                queue.append(key)
        reverse_calls: Dict[str, List[Tuple[str, int]]] = {}
        for caller, edges in self.call_graph.items():
            for callee, line in edges:
                reverse_calls.setdefault(callee, []).append((caller, line))
        while queue:
            key = queue.popleft()
            record = taint[key]
            callee_module, _, callee_qual = key.partition("::")
            for caller, line in reverse_calls.get(key, ()):  # BFS: shortest
                if caller in taint:
                    continue
                caller_module, _, caller_qual = caller.partition("::")
                caller_summary = self.summaries[caller_module]
                hop = (
                    f"{caller_summary.path}:{line} {caller_qual} calls "
                    f"{callee_qual} [{callee_module}]"
                )
                taint[caller] = TaintRecord(
                    kind=record.kind,
                    detail=record.detail,
                    chain=(hop,) + record.chain,
                    depth=record.depth + 1,
                )
                queue.append(caller)
        return taint

    def expand_changed(self, changed: Sequence[str]) -> Set[str]:
        """Changed modules plus their transitive reverse dependencies."""
        scope: Set[str] = set()
        for module in changed:
            if module not in self.summaries:
                continue
            scope.add(module)
            scope.update(self.reverse_dependencies(module))
        return scope
