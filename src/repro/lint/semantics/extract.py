"""Per-module semantic extraction (phase 1 of the two-phase analysis).

:func:`extract_module` distils one parsed module into a
:class:`~repro.lint.semantics.model.ModuleSummary`: the module-level
symbol table and import aliases, every class with its methods and base
names, and a :class:`~repro.lint.semantics.model.FunctionSummary` per
function — call sites (with inferred argument units and argument
shapes), direct determinism-taint sources (wall clocks, global RNG),
return-unit and closure-return facts.

Three intra-procedural analyses also run here so their results land in
the cacheable summary instead of re-running on warm starts:

* a statement-level CFG check that every ``trial*`` engine call is
  followed by a ``commit*``/``rollback``/``reset`` on all paths to the
  function exit (RL103's path discipline; ``try/except`` edges are
  modelled, ``finally`` is approximated as a normal successor block);
* direct writes to compiled-core arrays (``snr20_db``, ``has_link``,
  ...) recorded for RL103's mutation-discipline check;
* unit-domain conflicts in local ``+``/``-`` arithmetic (dB plus mW,
  dBm plus dBm) for RL102.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..context import ModuleContext
from .model import (
    CONVERTER_RETURNS,
    CallSite,
    ClassInfo,
    FunctionSummary,
    IntraFinding,
    ModuleSummary,
    Registration,
    unit_domain,
    unit_of_identifier,
    units_conflict,
)

__all__ = [
    "extract_module",
    "dotted_name",
    "COMPILED_ARRAY_ATTRS",
    "TRIAL_METHODS",
    "RESOLVE_METHODS",
    "REGISTRY_NAMES",
    "REGISTRAR_TO_REGISTRY",
]

# Compiled-core array attributes whose direct mutation outside the
# engine modules breaks the incremental-recompilation contract.
COMPILED_ARRAY_ATTRS = frozenset(
    {
        "snr20_db",
        "snr40_db",
        "has_link",
        "neighbor_lists",
        "channel_assignment",
        "rate_tables",
        "delay_tables",
    }
)

# Evaluator method-name conventions (receiver types are not resolved;
# the trial/commit vocabulary is unique to the engine stack).
TRIAL_METHODS = frozenset({"trial", "trial_index", "trial_move"})
RESOLVE_METHODS = frozenset(
    {"commit", "commit_index", "commit_move", "rollback", "reset"}
)

REGISTRY_NAMES = frozenset({"ALGORITHMS", "SCENARIOS", "RULES"})
REGISTRAR_TO_REGISTRY = {
    "register_algorithm": "ALGORITHMS",
    "register_scenario": "SCENARIOS",
    "register_rule": "RULES",
}

# Monotonic clocks are deterministic-safe only behind repro.obs.clock;
# wall clocks never are. Mirrors RL001's vocabulary so a source RL001
# cannot see (because its module is exempt) still taints callers.
_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})
_MONO_CLOCK_ATTRS = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def dotted_name(module_rel: str) -> str:
    """Dotted module name from a package-relative path.

    ``"core/allocation.py"`` → ``"repro.core.allocation"``;
    ``"net/__init__.py"`` → ``"repro.net"``; a bare filename outside a
    ``repro`` package reduces to its stem.
    """
    if "/" not in module_rel and module_rel == "__init__.py":
        return "repro"
    trimmed = module_rel[:-3] if module_rel.endswith(".py") else module_rel
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    dotted = trimmed.replace("/", ".")
    # Files that module_path() could anchor to a repro package carry the
    # package prefix; loose fixture files keep their bare stem.
    if module_rel == module_rel.split("/")[-1] and "/" not in module_rel:
        # Single component: "units.py" inside the package vs. a loose
        # fixture are indistinguishable here; both resolve fine because
        # the index keys modules by their package-relative path too.
        return f"repro.{dotted}" if module_rel.endswith(".py") else dotted
    return f"repro.{dotted}"


def _dotted_expr(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _callee_repr(func: ast.AST) -> str:
    """Encode a call target: dotted chain, registry marker, or dynamic."""
    dotted = _dotted_expr(func)
    if dotted is not None:
        return dotted
    if isinstance(func, ast.Subscript):
        base = _dotted_expr(func.value)
        if base is not None:
            tail = base.split(".")[-1]
            if tail in REGISTRY_NAMES or tail.isupper():
                return f"@registry:{tail}"
    return "@dynamic"


def _arg_ref(node: ast.AST) -> Optional[str]:
    """How an argument expression is formed, for capture analysis."""
    if isinstance(node, ast.Lambda):
        return "lambda"
    if isinstance(node, ast.Name):
        return f"name:{node.id}"
    dotted = _dotted_expr(node)
    if dotted is not None and "." in dotted:
        return f"attr:{dotted}"
    if isinstance(node, ast.Call):
        return f"call:{_callee_repr(node.func)}"
    if isinstance(node, ast.Constant):
        return "const"
    return None


def _infer_unit(node: ast.AST) -> Optional[str]:
    """Best-effort unit of an expression from naming conventions.

    Names and attribute tails carry their suffix unit; calls carry the
    callee's conventional return unit (``repro.units`` converters or a
    unit-suffixed function name); ``a - b`` of two absolute ``dbm``
    powers yields a ``db`` ratio; unary minus is transparent.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _infer_unit(node.operand)
    if isinstance(node, ast.Name):
        return unit_of_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_identifier(node.attr)
    if isinstance(node, ast.Call):
        tail = None
        dotted = _dotted_expr(node.func)
        if dotted is not None:
            tail = dotted.split(".")[-1]
        if tail is not None:
            if tail in CONVERTER_RETURNS:
                return CONVERTER_RETURNS[tail]
            return unit_of_identifier(tail)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _infer_unit(node.left)
        right = _infer_unit(node.right)
        if left == "dbm" and right == "dbm" and isinstance(node.op, ast.Sub):
            return "db"
        if left is not None and right is None:
            return left
        if right is not None and left is None:
            return right
        if left == right:
            return left
        if {left, right} == {"db", "dbm"}:
            return "dbm"
    return None


class _AliasTable:
    """Module import aliases relevant to taint detection."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: Set[str] = set()
        self.np_random: Set[str] = set()
        self.stdlib_random: Set[str] = set()
        self.time: Set[str] = set()
        self.clock_names: Set[str] = set()  # from time import perf_counter, ...
        self.wall_names: Set[str] = set()  # from time import time, time_ns
        self.random_names: Set[str] = set()  # from random import shuffle, ...
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    root = alias.name.split(".")[0]
                    if root == "numpy":
                        self.numpy.add(bound)
                    elif alias.name == "random":
                        self.stdlib_random.add(bound)
                    elif alias.name == "time":
                        self.time.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.np_random.add(alias.asname or alias.name)
                elif node.module == "time":
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if alias.name in _WALL_CLOCK_ATTRS:
                            self.wall_names.add(bound)
                        elif alias.name in _MONO_CLOCK_ATTRS:
                            self.clock_names.add(bound)
                elif node.module == "random":
                    for alias in node.names:
                        self.random_names.add(alias.asname or alias.name)


def _taint_of_call(node: ast.Call, aliases: _AliasTable) -> Optional[dict]:
    """A taint record if this call reads ambient time or global RNG."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in aliases.wall_names:
            return {
                "kind": "wall-clock",
                "detail": f"{func.id}()",
                "line": node.lineno,
            }
        if func.id in aliases.clock_names:
            return {
                "kind": "monotonic-clock",
                "detail": f"{func.id}()",
                "line": node.lineno,
            }
        if func.id in aliases.random_names:
            return {
                "kind": "global-rng",
                "detail": f"{func.id}()",
                "line": node.lineno,
            }
        return None
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name):
        if base.id in aliases.time and func.attr in _WALL_CLOCK_ATTRS:
            return {
                "kind": "wall-clock",
                "detail": f"time.{func.attr}()",
                "line": node.lineno,
            }
        if base.id in aliases.time and func.attr in _MONO_CLOCK_ATTRS:
            return {
                "kind": "monotonic-clock",
                "detail": f"time.{func.attr}()",
                "line": node.lineno,
            }
        if base.id in aliases.stdlib_random:
            return {
                "kind": "global-rng",
                "detail": f"random.{func.attr}()",
                "line": node.lineno,
            }
        if (
            base.id in aliases.np_random
            and func.attr not in _ALLOWED_NP_RANDOM
        ):
            return {
                "kind": "global-rng",
                "detail": f"np.random.{func.attr}()",
                "line": node.lineno,
            }
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "random"
        and isinstance(base.value, ast.Name)
        and base.value.id in aliases.numpy
        and func.attr not in _ALLOWED_NP_RANDOM
    ):
        return {
            "kind": "global-rng",
            "detail": f"np.random.{func.attr}()",
            "line": node.lineno,
        }
    tail = func.attr
    if tail in _DATETIME_ATTRS:
        base_tail = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if base_tail in ("datetime", "date"):
            return {
                "kind": "wall-clock",
                "detail": f"{base_tail}.{tail}()",
                "line": node.lineno,
            }
    return None


def _iter_expr_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes in source order, not descending into def/lambda bodies."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, ast.Call):
            # Arguments evaluate before the call fires.
            for sub in ast.iter_child_nodes(child):
                yield from _iter_expr_calls_from(sub)
            yield child
        else:
            yield from _iter_expr_calls(child)


def _iter_expr_calls_from(node: ast.AST) -> Iterator[ast.Call]:
    """Like :func:`_iter_expr_calls` but includes ``node`` itself."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    if isinstance(node, ast.Call):
        for sub in ast.iter_child_nodes(node):
            yield from _iter_expr_calls_from(sub)
        yield node
    else:
        yield from _iter_expr_calls(node)


# ----------------------------------------------------------------------
# Statement-level CFG for the trial/commit path check


class _Node:
    """One CFG node: the engine events a statement performs, in order."""

    __slots__ = ("events", "succs")

    def __init__(self) -> None:
        self.events: List[Tuple[str, str, int, int]] = []  # kind, attr, ln, col
        self.succs: Set[int] = set()


_EXIT = 0  # node id 0 is the synthetic function exit


class _CFG:
    """A tiny intra-procedural CFG over statement lists.

    Good enough for path questions of the form "does a resolve event
    stand between this trial call and every function exit": ``if``/
    ``for``/``while``/``with``/``try`` are modelled (each ``try`` body
    statement may jump to every handler), ``finally`` bodies run as
    normal successors, and ``return``/``raise`` exit (``raise`` inside
    a ``try`` reaches the handlers first).
    """

    def __init__(self) -> None:
        self.nodes: List[_Node] = [_Node()]  # [0] = EXIT

    def new(self) -> int:
        """Allocate a node, returning its id."""
        self.nodes.append(_Node())
        return len(self.nodes) - 1

    def link(self, src: int, dst: int) -> None:
        """Add the edge src → dst."""
        self.nodes[src].succs.add(dst)


def _stmt_events(cfg: _CFG, node_id: int, stmt: ast.AST) -> None:
    """Record trial/resolve engine calls a statement performs, in order."""
    for call in _iter_expr_calls(stmt):
        if not isinstance(call.func, ast.Attribute):
            continue
        attr = call.func.attr
        if attr in TRIAL_METHODS:
            cfg.nodes[node_id].events.append(
                ("trial", attr, call.lineno, call.col_offset)
            )
        elif attr in RESOLVE_METHODS:
            cfg.nodes[node_id].events.append(
                ("resolve", attr, call.lineno, call.col_offset)
            )


def _build_block(
    cfg: _CFG,
    stmts: Sequence[ast.stmt],
    breaks: Optional[List[int]],
    continues: Optional[List[int]],
    handlers: Sequence[int],
) -> Tuple[Optional[int], List[int]]:
    """Wire a statement list; returns (entry id, dangling exit ids)."""
    entry: Optional[int] = None
    dangling: List[int] = []

    def attach(node: int) -> None:
        nonlocal entry, dangling
        if entry is None:
            entry = node
        for prev in dangling:
            cfg.link(prev, node)
        dangling = []

    for stmt in stmts:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg.new()
            _stmt_events(cfg, node, stmt)
            attach(node)
            if isinstance(stmt, ast.Raise):
                for handler in handlers:
                    cfg.link(node, handler)
            cfg.link(node, _EXIT)
            dangling = []
        elif isinstance(stmt, ast.Break):
            node = cfg.new()
            attach(node)
            if breaks is not None:
                breaks.append(node)
            else:
                cfg.link(node, _EXIT)
            dangling = []
        elif isinstance(stmt, ast.Continue):
            node = cfg.new()
            attach(node)
            if continues is not None:
                continues.append(node)
            else:
                cfg.link(node, _EXIT)
            dangling = []
        elif isinstance(stmt, ast.If):
            head = cfg.new()
            _stmt_events(cfg, head, stmt.test)
            attach(head)
            body_entry, body_exits = _build_block(
                cfg, stmt.body, breaks, continues, handlers
            )
            if body_entry is not None:
                cfg.link(head, body_entry)
                dangling.extend(body_exits)
            else:
                dangling.append(head)
            if stmt.orelse:
                else_entry, else_exits = _build_block(
                    cfg, stmt.orelse, breaks, continues, handlers
                )
                if else_entry is not None:
                    cfg.link(head, else_entry)
                    dangling.extend(else_exits)
                else:
                    dangling.append(head)
            else:
                dangling.append(head)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = cfg.new()
            test = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            _stmt_events(cfg, head, test)
            attach(head)
            loop_breaks: List[int] = []
            loop_continues: List[int] = []
            body_entry, body_exits = _build_block(
                cfg, stmt.body, loop_breaks, loop_continues, handlers
            )
            if body_entry is not None:
                cfg.link(head, body_entry)
            for node in body_exits + loop_continues:
                cfg.link(node, head)
            dangling = list(loop_breaks)
            if stmt.orelse:
                else_entry, else_exits = _build_block(
                    cfg, stmt.orelse, breaks, continues, handlers
                )
                if else_entry is not None:
                    cfg.link(head, else_entry)
                    dangling.extend(else_exits)
                else:
                    dangling.append(head)
            else:
                dangling.append(head)
        elif isinstance(stmt, ast.Try):
            handler_entries: List[int] = []
            handler_exits: List[int] = []
            for handler in stmt.handlers:
                h_entry, h_exits = _build_block(
                    cfg, handler.body, breaks, continues, handlers
                )
                if h_entry is None:
                    h_entry = cfg.new()
                    h_exits = [h_entry]
                handler_entries.append(h_entry)
                handler_exits.extend(h_exits)
            body_entry, body_exits = _build_block(
                cfg, stmt.body, breaks, continues, list(handlers) + handler_entries
            )
            if body_entry is not None:
                attach(body_entry)
                # Any statement in the body may raise into a handler.
                for node_id in range(body_entry, len(cfg.nodes)):
                    node = cfg.nodes[node_id]
                    if node_id in handler_entries:
                        break
                    for h_entry in handler_entries:
                        node.succs.add(h_entry)
                dangling = list(body_exits)
            else:
                for h_entry in handler_entries:
                    dangling.append(h_entry) if False else None
            tail: List[ast.stmt] = list(stmt.orelse) + list(stmt.finalbody)
            after_exits = dangling + handler_exits
            dangling = after_exits
            if tail:
                tail_entry, tail_exits = _build_block(
                    cfg, tail, breaks, continues, handlers
                )
                if tail_entry is not None:
                    for prev in dangling:
                        cfg.link(prev, tail_entry)
                    dangling = tail_exits
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = cfg.new()
            for item in stmt.items:
                _stmt_events(cfg, head, item.context_expr)
            attach(head)
            body_entry, body_exits = _build_block(
                cfg, stmt.body, breaks, continues, handlers
            )
            if body_entry is not None:
                cfg.link(head, body_entry)
                dangling = body_exits
            else:
                dangling = [head]
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            node = cfg.new()  # nested defs execute later, not here
            attach(node)
            dangling = [node]
        else:
            node = cfg.new()
            _stmt_events(cfg, node, stmt)
            attach(node)
            dangling = [node]
    return entry, dangling


def _trial_gaps(func: ast.AST, qual: str) -> List[IntraFinding]:
    """Trial calls from which a resolve-free path reaches the exit."""
    cfg = _CFG()
    entry, dangling = _build_block(cfg, func.body, None, None, ())
    for node in dangling:
        cfg.link(node, _EXIT)
    if entry is None:
        return []
    gaps: List[IntraFinding] = []
    for node_id, node in enumerate(cfg.nodes):
        if node_id == _EXIT:
            continue
        for position, (kind, attr, line, col) in enumerate(node.events):
            if kind != "trial":
                continue
            resolved_locally = any(
                later[0] == "resolve" for later in node.events[position + 1:]
            )
            if resolved_locally:
                continue
            if _clean_exit_reachable(cfg, node_id):
                gaps.append(
                    IntraFinding(line=line, col=col, detail=attr, func=qual)
                )
    return gaps


def _clean_exit_reachable(cfg: _CFG, start: int) -> bool:
    """Whether EXIT is reachable from ``start`` avoiding resolve nodes."""
    stack = [succ for succ in cfg.nodes[start].succs]
    seen: Set[int] = set()
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        if node_id == _EXIT:
            return True
        node = cfg.nodes[node_id]
        if any(kind == "resolve" for kind, _, _, _ in node.events):
            continue
        stack.extend(node.succs)
    return False


# ----------------------------------------------------------------------
# Module-level extraction


def _relative_package(dotted: str, module_rel: str, level: int) -> str:
    """The package a level-``level`` relative import resolves against."""
    parts = dotted.split(".")
    if not module_rel.endswith("__init__.py"):
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: len(parts) - drop] if drop < len(parts) else parts[:1]
    return ".".join(parts)


def _collect_imports(
    tree: ast.Module, dotted: str, module_rel: str
) -> Tuple[Dict[str, dict], List[str]]:
    """(symbol aliases, candidate internal dep modules) from imports."""
    symbols: Dict[str, dict] = {}
    deps: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                symbols[bound] = {"kind": "alias", "target": target}
                if alias.name.split(".")[0] == "repro":
                    deps.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_package(dotted, module_rel, node.level)
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                symbols[bound] = {
                    "kind": "alias",
                    "target": f"{source}:{alias.name}",
                }
                if source.split(".")[0] == "repro":
                    deps.append(source)
                    deps.append(f"{source}.{alias.name}")
    return symbols, deps


def _returns_closure(func: ast.AST) -> bool:
    """Whether the function returns a nested def or a lambda."""
    nested = {
        n.name
        for n in ast.walk(func)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not func
    }
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Lambda):
                return True
            if isinstance(value, ast.Name) and value.id in nested:
                return True
    return False


def _returns_unit(func: ast.AST) -> Optional[str]:
    """The function's conventional return unit, if inferable."""
    name_unit = unit_of_identifier(func.name)
    if name_unit is not None:
        return name_unit
    units: Set[Optional[str]] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            units.add(_infer_unit(node.value))
    if len(units) == 1:
        (unit,) = units
        return unit
    return None


def _function_summary(
    func: ast.AST, qual: str, aliases: _AliasTable, is_method: bool
) -> FunctionSummary:
    """Build the summary for one function (including nested-def bodies)."""
    params = [arg.arg for arg in func.args.posonlyargs + func.args.args]
    summary = FunctionSummary(
        name=func.name,
        qual=qual,
        line=func.lineno,
        col=func.col_offset,
        params=params,
        is_method=is_method,
        returns_unit=_returns_unit(func),
        returns_closure=_returns_closure(func),
    )
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        taint = _taint_of_call(node, aliases)
        if taint is not None:
            summary.taints.append(taint)
        summary.calls.append(
            CallSite(
                callee=_callee_repr(node.func),
                line=node.lineno,
                col=node.col_offset,
                arg_units=[_infer_unit(arg) for arg in node.args],
                kw_units={
                    kw.arg: _infer_unit(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                },
                arg_refs=[_arg_ref(arg) for arg in node.args],
            )
        )
    return summary


def _unit_conflicts(tree: ast.Module) -> List[IntraFinding]:
    """Local ``+``/``-`` expressions mixing incompatible unit domains."""
    conflicts: List[IntraFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.BinOp) or not isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            continue
        left = _infer_unit(node.left)
        right = _infer_unit(node.right)
        if left is None or right is None:
            continue
        op = "+" if isinstance(node.op, ast.Add) else "-"
        if left == "dbm" and right == "dbm" and op == "+":
            conflicts.append(
                IntraFinding(
                    line=node.lineno,
                    col=node.col_offset,
                    detail=(
                        "dbm + dbm adds absolute powers in the log domain; "
                        "use repro.units.add_powers_dbm"
                    ),
                )
            )
            continue
        if left != right and units_conflict(left, right) and units_conflict(
            right, left
        ):
            conflicts.append(
                IntraFinding(
                    line=node.lineno,
                    col=node.col_offset,
                    detail=(
                        f"{left} {op} {right} mixes incompatible unit "
                        f"domains ({unit_domain(left)} vs {unit_domain(right)})"
                    ),
                )
            )
    return conflicts


def _compiled_writes(tree: ast.Module) -> List[IntraFinding]:
    """Assignments into compiled-core arrays, with enclosing function."""
    writes: List[IntraFinding] = []

    def scan(node: ast.AST, func_qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_qual = func_qual
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = (
                    f"{func_qual}.{child.name}" if func_qual else child.name
                )
            elif isinstance(child, ast.ClassDef):
                child_qual = (
                    f"{func_qual}.{child.name}" if func_qual else child.name
                )
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    attr = _write_target_attr(target)
                    if attr is not None:
                        writes.append(
                            IntraFinding(
                                line=child.lineno,
                                col=child.col_offset,
                                detail=attr,
                                func=func_qual,
                            )
                        )
            scan(child, child_qual)

    scan(tree, "")
    return writes


def _write_target_attr(target: ast.AST) -> Optional[str]:
    """The compiled-array attribute a write targets, if any.

    Writes to a bare ``self.<attr>`` are a class mutating its own
    state (the facade ``Network`` shares attribute names with
    ``CompiledNetwork``); only writes through a reference —
    ``compiled.snr20_db[...]``, ``self._compiled.has_link[...]`` —
    count as external pokes at the compiled core.
    """
    if isinstance(target, ast.Subscript):
        target = target.value
    if not isinstance(target, ast.Attribute):
        return None
    if target.attr not in COMPILED_ARRAY_ATTRS:
        return None
    base = target.value
    if isinstance(base, ast.Name) and base.id in ("self", "cls"):
        return None
    return target.attr


def extract_module(
    module: ModuleContext, source_hash: str = ""
) -> ModuleSummary:
    """Distil one parsed module into its cacheable semantic summary."""
    tree = module.tree
    dotted = dotted_name(module.module)
    aliases = _AliasTable(tree)
    import_symbols, dep_candidates = _collect_imports(
        tree, dotted, module.module
    )
    summary = ModuleSummary(
        module=module.module,
        path=module.path,
        dotted=dotted,
        source_hash=source_hash,
        waived=sorted(module.waived),
        dep_modules=sorted(set(dep_candidates)),
        symbols=dict(import_symbols),
    )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.symbols[stmt.name] = {"kind": "def"}
            summary.functions[stmt.name] = _function_summary(
                stmt, stmt.name, aliases, is_method=False
            )
            summary.trial_gaps.extend(_trial_gaps(stmt, stmt.name))
        elif isinstance(stmt, ast.ClassDef):
            summary.symbols[stmt.name] = {"kind": "class"}
            bases = [
                base for base in (_dotted_expr(b) for b in stmt.bases) if base
            ]
            info = ClassInfo(name=stmt.name, line=stmt.lineno, bases=bases)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods.append(item.name)
                    qual = f"{stmt.name}.{item.name}"
                    summary.functions[qual] = _function_summary(
                        item, qual, aliases, is_method=True
                    )
                    summary.trial_gaps.extend(_trial_gaps(item, qual))
            summary.classes[stmt.name] = info
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    kind = (
                        "lambda"
                        if isinstance(stmt.value, ast.Lambda)
                        else "assign"
                    )
                    summary.symbols.setdefault(target.id, {"kind": kind})
            if isinstance(stmt.value, ast.Dict):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in REGISTRY_NAMES
                    ):
                        for key, value in zip(
                            stmt.value.keys, stmt.value.values
                        ):
                            summary.registrations.append(
                                Registration(
                                    registry=target.id,
                                    line=value.lineno,
                                    name_const=(
                                        key.value
                                        if isinstance(key, ast.Constant)
                                        and isinstance(key.value, str)
                                        else None
                                    ),
                                    arg_ref=_arg_ref(value),
                                )
                            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            summary.symbols.setdefault(stmt.target.id, {"kind": "assign"})

    # register_*() calls anywhere in the module (top level or not; RL005
    # already polices placement — the semantic layer just records edges).
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        tail = _dotted_expr(node.func)
        tail = tail.split(".")[-1] if tail else ""
        registry = REGISTRAR_TO_REGISTRY.get(tail)
        if registry is None or len(node.args) < 2:
            continue
        name_node = node.args[0]
        summary.registrations.append(
            Registration(
                registry=registry,
                line=node.lineno,
                name_const=(
                    name_node.value
                    if isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)
                    else None
                ),
                arg_ref=_arg_ref(node.args[1]),
            )
        )

    summary.unit_conflicts = _unit_conflicts(tree)
    summary.compiled_writes = _compiled_writes(tree)
    return summary
