"""Finding records and output formatting for :mod:`repro.lint`.

A :class:`Finding` pins one rule violation to a ``file:line`` location.
Findings render either as classic compiler-style text lines
(``file:line: RLxxx message``) or as a JSON document for tooling
(``repro lint --format json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LintError

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Sort order is (path, line, col, rule_id) so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    chain: Tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.rule_id.startswith("RL"):
            raise LintError(f"rule ids must look like RLxxx, got {self.rule_id!r}")

    def render(self) -> str:
        """The compiler-style one-line form: ``file:line: RLxxx message``."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def render_chain(self) -> str:
        """The finding plus its ``file:line`` call-chain hops, indented."""
        body = self.render()
        if not self.chain:
            return body
        hops = "\n".join(f"    {hop}" for hop in self.chain)
        return f"{body}\n{hops}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form used by ``--format json``."""
        data: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
        if self.chain:
            data["chain"] = list(self.chain)
        return data


def render_text(findings: Sequence[Finding]) -> str:
    """All findings as newline-joined ``file:line: RLxxx message`` rows."""
    return "\n".join(finding.render() for finding in sorted(findings))


def render_json(
    findings: Sequence[Finding],
    files_checked: int = 0,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """A JSON report: per-rule counts plus the full sorted finding list.

    ``meta`` (per-rule timings, cache statistics) is merged into the
    top-level document when provided.
    """
    counts: Dict[str, int] = {}
    ordered: List[Finding] = sorted(findings)
    for finding in ordered:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    document: Dict[str, object] = {
        "files_checked": files_checked,
        "total": len(ordered),
        "counts": counts,
        "findings": [finding.to_dict() for finding in ordered],
    }
    if meta:
        document.update(meta)
    return json.dumps(document, indent=2, sort_keys=True)
