"""Finding records and output formatting for :mod:`repro.lint`.

A :class:`Finding` pins one rule violation to a ``file:line`` location.
Findings render either as classic compiler-style text lines
(``file:line: RLxxx message``) or as a JSON document for tooling
(``repro lint --format json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import LintError

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Sort order is (path, line, col, rule_id) so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def __post_init__(self) -> None:
        if not self.rule_id.startswith("RL"):
            raise LintError(f"rule ids must look like RLxxx, got {self.rule_id!r}")

    def render(self) -> str:
        """The compiler-style one-line form: ``file:line: RLxxx message``."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def render_text(findings: Sequence[Finding]) -> str:
    """All findings as newline-joined ``file:line: RLxxx message`` rows."""
    return "\n".join(finding.render() for finding in sorted(findings))


def render_json(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """A JSON report: per-rule counts plus the full sorted finding list."""
    counts: Dict[str, int] = {}
    ordered: List[Finding] = sorted(findings)
    for finding in ordered:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return json.dumps(
        {
            "files_checked": files_checked,
            "total": len(ordered),
            "counts": counts,
            "findings": [finding.to_dict() for finding in ordered],
        },
        indent=2,
        sort_keys=True,
    )
