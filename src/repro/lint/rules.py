"""The reprolint rule set and its pluggable registry.

Every rule is a :class:`LintRule` subclass registered into
:data:`RULES` via :func:`register_rule`; ``repro lint`` runs whatever
the registry holds, so downstream projects (or tests) can add rules
without touching the engine. Each rule carries its identifier, a
one-line title and a rationale paragraph — ``docs/LINT_RULES.md`` is
the human-readable mirror of this module.

The shipped rules guard the invariants the reproduction's correctness
rests on: explicit-``Generator`` determinism (RL001), dB/linear unit
hygiene around the paper's 3 dB channel-bonding penalty (RL002), the
``ReproError`` exit-code contract (RL003), logging discipline (RL004),
fleet-registry picklability (RL005) and public-API/``__all__``
consistency (RL006).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ..errors import LintError
from .context import ModuleContext
from .findings import Finding

__all__ = [
    "LintRule",
    "DeterminismRule",
    "UnitsRule",
    "ErrorDisciplineRule",
    "NoPrintRule",
    "RegistryPicklabilityRule",
    "PublicApiRule",
    "RULES",
    "register_rule",
    "default_rules",
    "rule_catalog",
    "WAIVER_RULE_ID",
    "PARSE_RULE_ID",
]

# Meta findings emitted by the engine itself (not waivable, not rules).
WAIVER_RULE_ID = "RL000"  # malformed / unknown waiver comment
PARSE_RULE_ID = "RL900"  # file failed to parse


class LintRule:
    """Base class for reprolint rules.

    Subclasses set :attr:`rule_id`, :attr:`title`, :attr:`rationale`
    and optionally :attr:`exempt_modules` (package-relative paths the
    rule never applies to), then implement :meth:`run`.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    exempt_modules: FrozenSet[str] = frozenset()

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule checks ``module`` at all (exemptions/waivers)."""
        return (
            module.module not in self.exempt_modules
            and self.rule_id not in module.waived
        )

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module; must be overridden."""
        raise LintError(f"rule {type(self).__name__} does not implement run()")

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def _tail_name(node: ast.AST) -> str:
    """The last identifier of a ``Name``/``Attribute`` chain ('' otherwise)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# ----------------------------------------------------------------------
# RL001 — determinism


class DeterminismRule(LintRule):
    """Forbid hidden global randomness and wall-clock reads in library code."""

    rule_id = "RL001"
    title = "no global random state or wall-clock reads"
    rationale = (
        "Sweep results must be bit-identical at any worker count, so every "
        "random draw must flow through an explicitly plumbed "
        "numpy.random.Generator (seeded via SeedSequence.spawn) and no "
        "library path may branch on wall-clock time. Legacy np.random.* "
        "module-level calls, the stdlib random module, time.time() and "
        "datetime.now() all smuggle ambient state past the seed plumbing. "
        "Monotonic clocks (time.perf_counter/monotonic) are deterministic-"
        "safe only behind the injected-clock seam in repro.obs.clock — "
        "anywhere else they are flagged too, so profiling cannot creep "
        "into library control flow. The asyncio event loop's clock "
        "(loop.time()) is the same hazard wearing a different API: it is "
        "legal only inside repro.service, whose repro.service.clock seam "
        "mirrors repro.obs.clock for serving-layer latency stamps."
    )
    exempt_modules = frozenset({"cli.py", "fleet/executor.py", "obs/clock.py"})
    # Event-loop time is allowed under this path prefix ONLY — unlike
    # exempt_modules, every other RL001 check still runs there.
    _LOOP_TIME_ALLOWED_PREFIX = "service/"
    _LOOP_ACCESSORS = frozenset(
        {"get_event_loop", "get_running_loop", "new_event_loop"}
    )

    # np.random attributes that construct explicit, plumb-able state.
    _ALLOWED_NP_RANDOM = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    _CLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})
    _MONO_CLOCK_ATTRS = frozenset(
        {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
    )
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Track import aliases, then flag the offending imports/calls."""
        numpy_aliases: Set[str] = set()
        np_random_aliases: Set[str] = set()
        stdlib_random_aliases: Set[str] = set()
        time_aliases: Set[str] = set()
        asyncio_aliases: Set[str] = set()
        loop_accessor_names: Set[str] = set()
        loop_names: Set[str] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name.split(".")[0] == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "random":
                        stdlib_random_aliases.add(bound)
                    elif alias.name == "time":
                        time_aliases.add(bound)
                    elif alias.name == "asyncio":
                        asyncio_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy" and node.level == 0:
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(alias.asname or alias.name)
                elif node.module == "asyncio" and node.level == 0:
                    for alias in node.names:
                        if alias.name in self._LOOP_ACCESSORS:
                            loop_accessor_names.add(
                                alias.asname or alias.name
                            )
                elif node.module == "random" and node.level == 0:
                    yield self.finding(
                        module,
                        node,
                        "import from the stdlib random module; plumb an "
                        "explicit np.random.Generator instead",
                    )
                elif node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in self._CLOCK_TIME_ATTRS:
                            yield self.finding(
                                module,
                                node,
                                f"from time import {alias.name} reads the "
                                "wall clock; results must not depend on it",
                            )
                        elif alias.name in self._MONO_CLOCK_ATTRS:
                            yield self.finding(
                                module,
                                node,
                                f"from time import {alias.name} times the "
                                "run outside the approved seam; inject a "
                                "clock via repro.obs.clock instead",
                            )

        # Names bound to an event loop (loop = asyncio.get_event_loop()).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if self._is_loop_accessor_call(
                value, asyncio_aliases, loop_accessor_names
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        loop_names.add(target.id)

        loop_time_allowed = module.module.startswith(
            self._LOOP_TIME_ALLOWED_PREFIX
        )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # loop.time()/time_ns() on the asyncio event loop: either
            # chained off an accessor call or through a bound name.
            if (
                func.attr in self._CLOCK_TIME_ATTRS
                and not loop_time_allowed
                and (
                    self._is_loop_accessor_call(
                        base, asyncio_aliases, loop_accessor_names
                    )
                    or (isinstance(base, ast.Name) and base.id in loop_names)
                )
            ):
                yield self.finding(
                    module,
                    node,
                    f"loop.{func.attr}() reads the asyncio event-loop "
                    "clock; only repro.service may (through the "
                    "repro.service.clock seam)",
                )
                continue
            # random.<anything>(...) via the stdlib module.
            if isinstance(base, ast.Name) and base.id in stdlib_random_aliases:
                yield self.finding(
                    module,
                    node,
                    f"random.{func.attr}() uses hidden global state; plumb "
                    "an explicit np.random.Generator instead",
                )
            # np.random.<legacy>(...) — module-level global RNG.
            elif self._is_np_random(base, numpy_aliases, np_random_aliases):
                if func.attr not in self._ALLOWED_NP_RANDOM:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{func.attr}() mutates numpy's global "
                        "RNG; use an explicit np.random.Generator",
                    )
            # time.time() / time.time_ns().
            elif (
                isinstance(base, ast.Name)
                and base.id in time_aliases
                and func.attr in self._CLOCK_TIME_ATTRS
            ):
                yield self.finding(
                    module,
                    node,
                    f"time.{func.attr}() reads the wall clock; library "
                    "results must not depend on it",
                )
            # time.perf_counter()/monotonic() (+_ns) outside the seam.
            elif (
                isinstance(base, ast.Name)
                and base.id in time_aliases
                and func.attr in self._MONO_CLOCK_ATTRS
            ):
                yield self.finding(
                    module,
                    node,
                    f"time.{func.attr}() times the run outside the "
                    "approved seam; inject a clock via repro.obs.clock "
                    "instead",
                )
            # datetime.now()/utcnow()/today() and date.today().
            elif func.attr in self._DATETIME_ATTRS and _tail_name(base) in (
                "datetime",
                "date",
            ):
                yield self.finding(
                    module,
                    node,
                    f"{_tail_name(base)}.{func.attr}() reads the wall "
                    "clock; library results must not depend on it",
                )

    def _is_loop_accessor_call(
        self,
        node: ast.AST,
        asyncio_aliases: Set[str],
        loop_accessor_names: Set[str],
    ) -> bool:
        """True for ``asyncio.get_event_loop()``-shaped calls."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in loop_accessor_names
        return (
            isinstance(func, ast.Attribute)
            and func.attr in self._LOOP_ACCESSORS
            and isinstance(func.value, ast.Name)
            and func.value.id in asyncio_aliases
        )

    def _is_np_random(
        self,
        base: ast.AST,
        numpy_aliases: Set[str],
        np_random_aliases: Set[str],
    ) -> bool:
        if isinstance(base, ast.Name):
            return base.id in np_random_aliases
        return (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        )


# ----------------------------------------------------------------------
# RL002 — unit hygiene


class UnitsRule(LintRule):
    """Flag inline dB/linear conversion arithmetic outside repro.units."""

    rule_id = "RL002"
    title = "no inline dB/linear conversion arithmetic"
    rationale = (
        "The paper's headline number — the ~3 dB per-subcarrier SNR penalty "
        "of channel bonding (Sec 3.1) — is one log-base or factor-of-10 slip "
        "away from silently corrupting every downstream comparison. All "
        "dB/linear conversions therefore live in repro.units (linear_to_db, "
        "db_to_linear, mw_to_dbm, noise_floor_dbm, ...); deliberate "
        "PHY-layer spectral math carries a per-file waiver."
    )
    exempt_modules = frozenset({"units.py"})

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Match ``10*log10(x)`` / ``10**(x/10)`` shapes in expressions."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Mult):
                pairs = ((node.left, node.right), (node.right, node.left))
                for factor, other in pairs:
                    if self._has_db_factor(factor) and self._is_log10_call(other):
                        yield self.finding(
                            module,
                            node,
                            "inline linear→dB conversion (10*log10); use "
                            "repro.units.linear_to_db and friends",
                        )
                        break
            elif isinstance(node.op, ast.Pow):
                if self._is_db_constant(node.left) and self._divides_by_db(
                    node.right
                ):
                    yield self.finding(
                        module,
                        node,
                        "inline dB→linear conversion (10**(x/10)); use "
                        "repro.units.db_to_linear and friends",
                    )

    @staticmethod
    def _is_db_constant(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and type(node.value) in (int, float)
            and float(node.value) in (10.0, 20.0)
        )

    def _has_db_factor(self, node: ast.AST) -> bool:
        """True for 10/20 constants, possibly buried in a product chain."""
        if self._is_db_constant(node):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            return self._has_db_factor(node.left) or self._has_db_factor(
                node.right
            )
        return False

    @staticmethod
    def _is_log10_call(node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and _tail_name(node.func) == "log10"

    def _divides_by_db(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Div)
            and self._is_db_constant(node.right)
        )


# ----------------------------------------------------------------------
# RL003 — error discipline


class ErrorDisciplineRule(LintRule):
    """Library code must raise ReproError subclasses, not builtins."""

    rule_id = "RL003"
    title = "raise ReproError subclasses, not bare builtins"
    rationale = (
        "The CLI maps any ReproError to a one-line message and exit code 2; "
        "a bare ValueError escaping library code instead produces a "
        "traceback and an uncontracted exit status, and the fleet executor "
        "uses the ReproError/other split to decide retryability. Raising "
        "from the repro.errors hierarchy keeps both contracts airtight."
    )
    exempt_modules = frozenset({"cli.py"})

    _BANNED = frozenset(
        {
            "Exception",
            "ValueError",
            "RuntimeError",
            "TypeError",
            "KeyError",
            "IndexError",
            "ArithmeticError",
            "ZeroDivisionError",
        }
    )

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag ``raise <builtin>`` statements (bare re-raise is fine)."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = ""
            if isinstance(exc, ast.Call):
                name = _tail_name(exc.func)
            elif isinstance(exc, (ast.Name, ast.Attribute)):
                name = _tail_name(exc)
            if name in self._BANNED:
                yield self.finding(
                    module,
                    node,
                    f"raise {name} in library code; raise a ReproError "
                    "subclass from repro.errors instead",
                )


# ----------------------------------------------------------------------
# RL004 — no print in library modules


class NoPrintRule(LintRule):
    """Library modules must not print; only the CLI owns stdout."""

    rule_id = "RL004"
    title = "no print() outside the CLI"
    rationale = (
        "Sweep workers run dozens of jobs in parallel; a stray print() in "
        "library code interleaves garbage into the CLI's table output and "
        "the JSONL journal stream. All user-facing output flows through "
        "the CLI layer, which is exempt."
    )
    exempt_modules = frozenset({"cli.py", "__main__.py"})

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag direct ``print(...)`` calls."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code; return data and let the CLI "
                    "render it",
                )


# ----------------------------------------------------------------------
# RL005 — registry picklability


class RegistryPicklabilityRule(LintRule):
    """Registered runners/factories must be module-level functions."""

    rule_id = "RL005"
    title = "registry entries must be module-level callables"
    rationale = (
        "The fleet executor ships registered algorithm runners and scenario "
        "factories into worker processes; pickling resolves functions by "
        "module-qualified name, so lambdas and nested defs break the moment "
        "a spawn-context pool (or a journal replay) needs them. "
        "Registration must also execute at import time, or re-importing "
        "workers will not see the entry. Instances of module-level classes "
        "(builder-compiled factories such as CompiledChain) pickle by class "
        "reference, so registering one from a method is safe and exempt."
    )

    _REGISTRARS = frozenset(
        {"register_algorithm", "register_scenario", "register_rule"}
    )
    _REGISTRY_NAMES = frozenset({"ALGORITHMS", "SCENARIOS", "RULES"})

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Check register_*() call sites and registry dict literals."""
        nested_defs = self._nested_def_names(module.tree)
        module_lambdas = {
            target.id
            for stmt in module.tree.body
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda)
            for target in stmt.targets
            if isinstance(target, ast.Name)
        }
        module_classes = {
            stmt.name
            for stmt in module.tree.body
            if isinstance(stmt, ast.ClassDef)
        }
        method_returns = self._class_method_returns(
            module.tree, module_classes
        )

        for scope_node, scope, node in self._walk_with_scope(module.tree):
            if isinstance(node, ast.Call):
                name = _tail_name(node.func)
                if name not in self._REGISTRARS:
                    continue
                if scope is not None and not any(
                    self._is_instance_expr(
                        arg, scope_node, module_classes, method_returns
                    )
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{name}() inside {scope!r}; registration must run "
                        "at import time so worker processes see it",
                    )
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        yield self.finding(
                            module,
                            node,
                            f"{name}() given a lambda; lambdas cannot be "
                            "pickled by reference — use a module-level def",
                        )
                    elif isinstance(arg, ast.Name) and (
                        arg.id in nested_defs or arg.id in module_lambdas
                    ):
                        kind = "nested def" if arg.id in nested_defs else "lambda"
                        yield self.finding(
                            module,
                            node,
                            f"{name}() given {arg.id!r}, a {kind}; worker "
                            "processes cannot unpickle it — use a "
                            "module-level def",
                        )
            elif (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Dict)
                and any(
                    isinstance(t, ast.Name) and t.id in self._REGISTRY_NAMES
                    for t in node.targets
                )
            ):
                for value in node.value.values:
                    if isinstance(value, ast.Lambda):
                        yield self.finding(
                            module,
                            value,
                            "registry dict holds a lambda; worker processes "
                            "cannot unpickle it — use a module-level def",
                        )

    @staticmethod
    def _nested_def_names(tree: ast.Module) -> Set[str]:
        """Names of functions defined inside other functions."""
        nested: Set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return nested

    @staticmethod
    def _annotation_class(node) -> Optional[str]:
        """Class name from a return annotation (Name or string form)."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.strip("'\"")
        return None

    @classmethod
    def _class_method_returns(
        cls, tree: ast.Module, module_classes: Set[str]
    ) -> Dict[str, str]:
        """Method name -> module-level class named by its return annotation.

        ``freeze(self) -> "CompiledChain"`` maps ``freeze`` to
        ``CompiledChain``; calls to such methods produce instances that
        pickle by class reference, so registering them is safe.
        """
        returns: Dict[str, str] = {}
        for stmt in tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            for item in stmt.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                target = cls._annotation_class(item.returns)
                if target in module_classes:
                    returns[item.name] = target
        return returns

    @classmethod
    def _is_instance_expr(
        cls,
        expr,
        scope_node,
        module_classes: Set[str],
        method_returns: Dict[str, str],
        depth: int = 0,
    ) -> bool:
        """True when ``expr`` evaluates to a module-level class instance.

        Recognizes a direct constructor call, a ``self.<method>()`` call
        whose return annotation names a module-level class, and a local
        name assigned from either (one level of indirection).
        """
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in module_classes:
                return True
            return (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in method_returns
            )
        if isinstance(expr, ast.Name) and scope_node is not None and depth == 0:
            for stmt in ast.walk(scope_node):
                value = None
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == expr.id
                    for t in stmt.targets
                ):
                    value = stmt.value
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == expr.id
                ):
                    value = stmt.value
                if value is not None and cls._is_instance_expr(
                    value, scope_node, module_classes, method_returns, depth + 1
                ):
                    return True
        return False

    @staticmethod
    def _walk_with_scope(tree: ast.Module):
        """Yield (enclosing function node, its name, node) triples."""
        stack: List = [(None, None, tree)]
        while stack:
            scope_node, scope, node = stack.pop()
            yield scope_node, scope, node
            child_scope_node, child_scope = scope_node, scope
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_scope_node, child_scope = node, node.name
            for child in ast.iter_child_nodes(node):
                stack.append((child_scope_node, child_scope, child))


# ----------------------------------------------------------------------
# RL006 — public API / __all__ consistency


class PublicApiRule(LintRule):
    """Modules declare __all__; it matches the public surface; docs exist."""

    rule_id = "RL006"
    title = "__all__ present, consistent, and documented"
    rationale = (
        "docs/API.md and the star-import surface are generated from what "
        "modules claim to export. A module without __all__, an __all__ "
        "naming something undefined, or a public def missing from __all__ "
        "silently drifts the documented API away from the real one."
    )
    exempt_modules = frozenset({"__main__.py"})

    def run(self, module: ModuleContext) -> Iterator[Finding]:
        """Cross-check __all__ against module-level bindings and docstrings."""
        tree = module.tree
        if not ast.get_docstring(tree):
            yield self.finding(module, tree, "module lacks a docstring")

        all_node, all_names = self._find_all(tree)
        if all_node is None:
            yield self.finding(
                module,
                tree,
                "module does not declare __all__; the public surface is "
                "undefined",
            )
            return
        if all_names is None:
            yield self.finding(
                module,
                all_node,
                "__all__ is not a literal list/tuple of strings; it cannot "
                "be checked statically",
            )
            return

        bound = self._module_bindings(tree)
        for name in all_names:
            if name not in bound and name != "__version__":
                yield self.finding(
                    module,
                    all_node,
                    f"__all__ names {name!r} which is not defined at module "
                    "level",
                )

        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if stmt.name.startswith("_"):
                    continue
                if stmt.name not in all_names:
                    yield self.finding(
                        module,
                        stmt,
                        f"public {stmt.name!r} is missing from __all__ "
                        "(export it or rename it with a leading underscore)",
                    )
                if not ast.get_docstring(stmt):
                    yield self.finding(
                        module,
                        stmt,
                        f"public {stmt.name!r} lacks a docstring",
                    )

    @staticmethod
    def _find_all(tree: ast.Module):
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(stmt.value, (ast.List, ast.Tuple)) and all(
                            isinstance(e, ast.Constant) and isinstance(e.value, str)
                            for e in stmt.value.elts
                        ):
                            return stmt, [e.value for e in stmt.value.elts]
                        return stmt, None
        return None, None

    @staticmethod
    def _module_bindings(tree: ast.Module) -> Set[str]:
        bound: Set[str] = set()
        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                bound.add(element.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                bound.add(stmt.target.id)
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Conditional definitions (TYPE_CHECKING blocks, fallbacks).
                for sub in ast.walk(stmt):
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        bound.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if isinstance(target, ast.Name):
                                bound.add(target.id)
        return bound


# ----------------------------------------------------------------------
# Registry


RULES: Dict[str, LintRule] = {}


def register_rule(rule: LintRule) -> None:
    """Add ``rule`` to the registry keyed by its ``rule_id``.

    Re-registering the identical object is a no-op; binding an existing
    id to a different rule is an error, mirroring the scenario and
    algorithm registries.
    """
    if not rule.rule_id:
        raise LintError(f"rule {type(rule).__name__} has no rule_id")
    existing = RULES.get(rule.rule_id)
    if existing is not None and existing is not rule:
        raise LintError(f"rule id {rule.rule_id!r} is already registered")
    RULES[rule.rule_id] = rule


def default_rules() -> List[LintRule]:
    """All registered rules, sorted by id."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def rule_catalog() -> List[Dict[str, str]]:
    """Id/title/rationale/exemptions rows for docs and ``--list-rules``."""
    rows = [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "rationale": rule.rationale,
            "exempt": ", ".join(sorted(rule.exempt_modules)) or "-",
        }
        for rule in default_rules()
    ]
    rows.append(
        {
            "id": WAIVER_RULE_ID,
            "title": "malformed reprolint waiver comment",
            "rationale": (
                "A waiver that names an unknown rule or omits its reason is "
                "a silent hole in the gate; the engine reports it instead "
                "of honouring it."
            ),
            "exempt": "-",
        }
    )
    rows.append(
        {
            "id": PARSE_RULE_ID,
            "title": "file failed to parse",
            "rationale": (
                "A file the ast module cannot parse cannot be checked; the "
                "engine surfaces the SyntaxError as a finding rather than "
                "aborting the whole run."
            ),
            "exempt": "-",
        }
    )
    return sorted(rows, key=lambda row: row["id"])


register_rule(DeterminismRule())
register_rule(UnitsRule())
register_rule(ErrorDisciplineRule())
register_rule(NoPrintRule())
register_rule(RegistryPicklabilityRule())
register_rule(PublicApiRule())
