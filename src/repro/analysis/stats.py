"""Statistics used by the paper's analysis.

The coefficient of determination follows Jain ("The Art of Computer
Systems Performance Analysis") — the reference the paper cites when
reporting R² = 0.8/0.89 between measured and theoretical BER curves.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ecdf", "coefficient_of_determination", "summary_statistics"]


def ecdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted_values, cumulative_probabilities)``.

    Probabilities use the k/n convention so the last point reaches 1.0.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot build an ECDF from an empty sample")
    ordered = np.sort(values)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probabilities


def coefficient_of_determination(
    observed: np.ndarray, predicted: np.ndarray
) -> float:
    """R² of a model's predictions against observations.

    ``R² = 1 - SS_res / SS_tot``. A constant observation vector makes
    SS_tot zero; in that degenerate case we return 1.0 for a perfect
    match and 0.0 otherwise.
    """
    observed = np.asarray(observed, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if observed.shape != predicted.shape:
        raise ConfigurationError(
            f"shape mismatch: {observed.shape} vs {predicted.shape}"
        )
    if observed.size == 0:
        raise ConfigurationError("cannot compute R² on empty arrays")
    residual = float(np.sum((observed - predicted) ** 2))
    total = float(np.sum((observed - np.mean(observed)) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def summary_statistics(values: Iterable[float]) -> Dict[str, float]:
    """Location/spread summary of a sample, as a flat dict.

    Returns ``n``, ``mean``, ``std`` (population), ``min``, ``p10``,
    ``median``, ``p90`` and ``max`` — the row shape the sweep result
    store reports per algorithm.
    """
    array = np.asarray(list(values), dtype=float).ravel()
    if array.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    return {
        "n": float(array.size),
        "mean": float(np.mean(array)),
        "std": float(np.std(array)),
        "min": float(np.min(array)),
        "p10": float(np.percentile(array, 10)),
        "median": float(np.median(array)),
        "p90": float(np.percentile(array, 90)),
        "max": float(np.max(array)),
    }
