"""Analysis helpers: ECDF, R², ASCII tables for bench reports."""

from .stats import coefficient_of_determination, ecdf, summary_statistics
from .tables import render_table
from .fairness import (
    jain_index,
    proportional_fair_utility,
    throughput_fairness_report,
)
from .plots import ascii_line_chart, sparkline

__all__ = [
    "ecdf",
    "coefficient_of_determination",
    "summary_statistics",
    "render_table",
    "jain_index",
    "proportional_fair_utility",
    "throughput_fairness_report",
    "sparkline",
    "ascii_line_chart",
]
