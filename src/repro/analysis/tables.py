"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows the paper's tables and
figures report; this keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ConfigurationError

__all__ = ["render_table"]


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".2f",
    title: str = "",
) -> str:
    """Render an ASCII table with aligned columns.

    ``rows`` may contain strings, ints, floats (formatted with
    ``float_format``) and booleans.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    formatted: List[List[str]] = [
        [_format_cell(value, float_format) for value in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(str(h).ljust(width) for h, width in zip(headers, widths))
    )
    lines.append(separator)
    for row in formatted:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
