"""Terminal plotting: ASCII line charts and sparklines for reports.

The benchmark harness and CLI print tables; time series (the mobility
traces, long-run throughput) read better as pictures. These renderers
produce plain-text charts that survive log files and CI output.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError

__all__ = ["sparkline", "ascii_line_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a series."""
    data = [float(v) for v in values]
    if not data:
        raise ConfigurationError("cannot sparkline an empty series")
    low = min(data)
    high = max(data)
    if high == low:
        return _SPARK_LEVELS[0] * len(data)
    scale = (len(_SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        _SPARK_LEVELS[int(round((value - low) * scale))] for value in data
    )


def ascii_line_chart(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
    marker: str = "*",
) -> str:
    """Render (x, y) as an ASCII scatter/line chart.

    Values are binned onto a ``width`` x ``height`` grid; the y axis is
    annotated with min/max, the x axis with its range.
    """
    xs = [float(v) for v in x]
    ys = [float(v) for v in y]
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"x has {len(xs)} points but y has {len(ys)}"
        )
    if not xs:
        raise ConfigurationError("cannot chart an empty series")
    if width < 10 or height < 3:
        raise ConfigurationError("chart must be at least 10x3")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for x_value, y_value in zip(xs, ys):
        column = int((x_value - x_low) / x_span * (width - 1))
        row = height - 1 - int((y_value - y_low) / y_span * (height - 1))
        grid[row][column] = marker

    label_width = max(len(f"{y_high:.1f}"), len(f"{y_low:.1f}"))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.1f}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_low:.1f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_axis_label = f"{x_low:.0f}".ljust(width - len(f"{x_high:.0f}")) + f"{x_high:.0f}"
    lines.append(f"{' ' * label_width}  {x_axis_label}")
    if y_label:
        lines.append(f"{' ' * label_width}  [{y_label}]")
    return "\n".join(lines)
