"""Fairness metrics for the throughput/fairness trade-off analysis.

Section 4 of the paper is explicit about its objective: "we tradeoff
some level of fairness for significant gains in the total network-wide
throughput", in line with proportional-fair cellular schedulers. These
metrics make that trade-off measurable: Jain's fairness index (from the
same Jain reference the paper cites for R²) and the proportional-fair
utility Σ log(x_i).
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from ..errors import ConfigurationError

__all__ = ["jain_index", "proportional_fair_utility", "throughput_fairness_report"]


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1].

    1.0 means perfectly equal allocations; 1/n means one user gets
    everything.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("fairness of an empty allocation is undefined")
    if np.any(array < 0):
        raise ConfigurationError("allocations must be non-negative")
    total_squared = float(np.sum(array) ** 2)
    sum_of_squares = float(array.size * np.sum(array**2))
    if sum_of_squares == 0.0:
        # All-zero allocation: degenerate but "equal".
        return 1.0
    return total_squared / sum_of_squares


def proportional_fair_utility(
    values: Iterable[float], floor: float = 1e-3
) -> float:
    """Σ log(x_i), the proportional-fair objective.

    Zero allocations are floored at ``floor`` so a starved client shows
    up as a large negative utility instead of −∞.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("utility of an empty allocation is undefined")
    if np.any(array < 0):
        raise ConfigurationError("allocations must be non-negative")
    if floor <= 0:
        raise ConfigurationError(f"floor must be positive, got {floor}")
    return float(np.sum(np.log(np.maximum(array, floor))))


def throughput_fairness_report(values: Iterable[float]) -> "dict[str, float]":
    """Total, Jain index, PF utility, min and max of an allocation."""
    array: List[float] = [float(v) for v in values]
    if not array:
        raise ConfigurationError("empty allocation")
    return {
        "total": math.fsum(array),
        "jain": jain_index(array),
        "pf_utility": proportional_fair_utility(array),
        "min": min(array),
        "max": max(array),
    }
