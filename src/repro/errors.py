"""Exception hierarchy for the ACORN reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ScenarioError",
    "ChannelError",
    "TopologyError",
    "SerializationError",
    "AssociationError",
    "AllocationError",
    "FleetError",
    "JobTimeout",
    "UnitsError",
    "LintError",
    "ObsError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """An invalid simulation or algorithm configuration was supplied."""


class ScenarioError(ConfigurationError):
    """A contradictory or invalid scenario-builder step chain.

    Raised *eagerly* by :mod:`repro.sim.builder` at the offending fluent
    step (clients before any APs, overlapping AP grids, negative
    counts), never deferred to ``build()`` or a sweep worker. Also a
    :class:`ConfigurationError` so existing callers that guard scenario
    construction keep working.
    """


class ChannelError(ReproError):
    """An invalid channel, bonded pair, or channel-plan operation."""


class TopologyError(ReproError):
    """An inconsistent network topology (unknown AP/client, bad geometry)."""


class SerializationError(TopologyError):
    """A saved network could not be loaded (bad version, bad fingerprint).

    Also a :class:`TopologyError` so callers that guarded loads with
    ``except TopologyError`` before this class existed keep working.
    """


class AssociationError(ReproError):
    """A user-association operation could not be completed."""


class AllocationError(ReproError):
    """A channel-allocation operation could not be completed."""


class FleetError(ReproError):
    """A sweep-orchestration operation (spec, journal, executor) failed."""


class JobTimeout(FleetError):
    """A sweep job exceeded its per-job wall-clock budget."""


class UnitsError(ReproError, ValueError):
    """An invalid physical quantity was passed to a unit conversion.

    Also a :class:`ValueError` so long-standing callers that guard the
    conversions with ``except ValueError`` keep working.
    """


class LintError(ReproError):
    """An internal ``repro lint`` failure (bad target, unknown rule).

    Findings are *not* errors — they are data; this class marks runs
    that could not complete at all (CLI exit code 2).
    """


class ServiceError(ReproError):
    """A :mod:`repro.service` request could not be served.

    Raised for malformed requests, unknown clients/shards, and service
    lifecycle misuse (submitting to a stopped service). Domain failures
    bubbling up from the controller (e.g. an inadmissible client) keep
    their own types; this class marks the serving layer itself.
    """


class ObsError(ReproError):
    """A misused :mod:`repro.obs` primitive (unbalanced spans, bad merge).

    Instrumentation must never corrupt a measurement silently: closing a
    span that is not the innermost open one, merging histograms with
    different bucket bounds, or registering one metric name under two
    types all raise this instead of producing a quietly wrong trace.
    """
