"""Global constants and configuration objects for the ACORN reproduction.

The numbers here are either taken directly from the paper / the 802.11n
standard (subcarrier counts, noise-floor formula inputs, the epsilon
stopping threshold) or are conventional radio-engineering defaults (noise
figure, path-loss exponent) used by the simulated testbed substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigurationError
from .units import THERMAL_NOISE_DBM_PER_HZ

__all__ = [
    "THERMAL_NOISE_DBM_PER_HZ",
    "DEFAULT_NOISE_FIGURE_DB",
    "CB_SUBCARRIER_PENALTY_DB",
    "MAX_TX_POWER_DBM",
    "DEFAULT_PACKET_SIZE_BYTES",
    "ACORN_EPSILON",
    "ACORN_PERIOD_SECONDS",
    "PathLossModel",
    "SimulationConfig",
    "make_rng",
]

# The Johnson-Nyquist thermal noise density (-174 dBm/Hz) now lives in
# repro.units next to the Eq. 1 noise_floor_dbm helper; re-exported here
# because every PHY call site historically reads it from the config.

# Receiver noise figure added on top of the thermal floor. Commodity
# 802.11n cards are typically 5-7 dB; the exact value shifts every SNR by a
# constant and does not change any comparison in the paper.
DEFAULT_NOISE_FIGURE_DB = 6.0

# The headline PHY effect (Section 3.1): with channel bonding the same total
# transmit power is spread across 108 instead of 52 data subcarriers, a
# ~3 dB (52 %) reduction in per-subcarrier energy, and the total noise floor
# rises 3 dB with the doubled bandwidth. Net effect on per-subcarrier SNR:
CB_SUBCARRIER_PENALTY_DB = 3.0

# 802.11n mandates the same maximum transmit power for 20 and 40 MHz.
MAX_TX_POWER_DBM = 23.0

# Packet size used throughout the paper's experiments (Sec 3.1: 1500-byte
# packets) and in the Eq. 6 PER computation.
DEFAULT_PACKET_SIZE_BYTES = 1500

# Algorithm 2 stopping threshold: stop when the aggregate throughput grows
# by 5 % or less between iterations (Section 4.2, "ε = 1.05").
ACORN_EPSILON = 1.05

# Channel-allocation periodicity chosen from the CRAWDAD association-trace
# analysis (Fig 9: median association ≈ 31 min) — run every 30 minutes.
ACORN_PERIOD_SECONDS = 30 * 60


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional log-normal shadowing.

    ``PL(d) = pl0_db + 10 * exponent * log10(d / d0) + X_sigma``

    Parameters
    ----------
    pl0_db:
        Path loss at the reference distance, in dB. The default (46.7 dB)
        is free-space loss at 1 m for 5.2 GHz.
    exponent:
        Path-loss exponent. 3.0 is typical for indoor enterprise
        deployments with walls (the paper's testbed spans indoor and
        outdoor links).
    reference_m:
        Reference distance d0, in metres.
    shadowing_sigma_db:
        Standard deviation of log-normal shadowing, in dB. Zero disables
        shadowing (deterministic loss).
    """

    pl0_db: float = 46.7
    exponent: float = 3.0
    reference_m: float = 1.0
    shadowing_sigma_db: float = 0.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(
                f"path-loss exponent must be positive, got {self.exponent}"
            )
        if self.reference_m <= 0:
            raise ConfigurationError(
                f"reference distance must be positive, got {self.reference_m}"
            )
        if self.shadowing_sigma_db < 0:
            raise ConfigurationError(
                "shadowing sigma must be non-negative, got "
                f"{self.shadowing_sigma_db}"
            )

    def loss_db(self, distance_m: float, rng: "np.random.Generator | None" = None) -> float:
        """Path loss in dB at ``distance_m`` metres.

        Distances below the reference distance are clamped to it (the
        log-distance model is not meaningful in the near field).
        """
        if distance_m < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance_m}")
        d = max(distance_m, self.reference_m)
        # reprolint: ok RL002 log-distance law scales the dB term by the
        # path-loss exponent; this is not a plain power-ratio conversion
        loss = self.pl0_db + 10.0 * self.exponent * np.log10(d / self.reference_m)
        if self.shadowing_sigma_db > 0 and rng is not None:
            loss += rng.normal(0.0, self.shadowing_sigma_db)
        return float(loss)


@dataclass
class SimulationConfig:
    """Bundle of knobs shared by the testbed-substrate simulations."""

    seed: int = 2010
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB
    max_tx_power_dbm: float = MAX_TX_POWER_DBM
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    path_loss: PathLossModel = field(default_factory=PathLossModel)

    def __post_init__(self) -> None:
        if self.packet_size_bytes <= 0:
            raise ConfigurationError(
                f"packet size must be positive, got {self.packet_size_bytes}"
            )

    def rng(self) -> np.random.Generator:
        """A fresh generator seeded from this configuration."""
        return make_rng(self.seed)


def make_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Normalise ``seed`` into a numpy ``Generator``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
