"""Linear modulations used by 802.11n plus the theoretical error rates.

Provides Gray-coded constellations (BPSK, QPSK, 16-QAM, 64-QAM), bit
mapping/demapping for the sample-level WARP chain, and closed-form AWGN
symbol/bit error probabilities (Rappaport) used by the paper for the
Fig 3 "theory" curves and by ACORN's link-quality estimator.

SNR convention: ``snr`` arguments are linear Es/N0 per *subcarrier*
(i.e. per modulated symbol) unless a ``_db`` suffix says otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

import numpy as np
from scipy.special import erfc

from ..errors import ConfigurationError
from ..units import db_to_linear

__all__ = [
    "Modulation",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "MODULATIONS",
    "modulation_by_name",
    "q_function",
]


def q_function(x: "float | np.ndarray") -> "float | np.ndarray":
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / math.sqrt(2.0))


def _gray_code(n_bits: int) -> np.ndarray:
    """Gray-code sequence of length 2**n_bits."""
    n = 1 << n_bits
    codes = np.arange(n)
    return codes ^ (codes >> 1)


def _pam_levels(n_bits: int) -> np.ndarray:
    """Gray-mapped PAM amplitude levels for one I or Q axis.

    Returns an array where entry ``b`` is the amplitude transmitted for
    the Gray-decoded bit pattern ``b``.
    """
    m = 1 << n_bits
    # Natural-order amplitudes -(m-1), ..., -1, 1, ..., (m-1).
    amplitudes = 2 * np.arange(m) - (m - 1)
    levels = np.empty(m)
    gray = _gray_code(n_bits)
    for position, bits in enumerate(gray):
        levels[bits] = amplitudes[position]
    return levels.astype(float)


def _square_qam_constellation(bits_per_symbol: int) -> np.ndarray:
    """Unit-average-energy square QAM constellation, Gray mapped.

    Entry ``i`` is the complex point transmitted for bit pattern ``i``
    (MSBs on the in-phase axis).
    """
    if bits_per_symbol % 2:
        raise ConfigurationError(
            f"square QAM needs an even bit count, got {bits_per_symbol}"
        )
    half = bits_per_symbol // 2
    pam = _pam_levels(half)
    m_axis = 1 << half
    points = np.empty(1 << bits_per_symbol, dtype=complex)
    for i_bits in range(m_axis):
        for q_bits in range(m_axis):
            index = (i_bits << half) | q_bits
            points[index] = pam[i_bits] + 1j * pam[q_bits]
    # Normalise to unit average symbol energy.
    energy = np.mean(np.abs(points) ** 2)
    return points / math.sqrt(energy)


@dataclass(frozen=True)
class Modulation:
    """One linear modulation with its constellation and AWGN error theory.

    Attributes
    ----------
    name:
        Canonical label ("BPSK", "QPSK", "16QAM", "64QAM").
    bits_per_symbol:
        log2 of the constellation size.
    constellation:
        Unit-average-energy complex points, indexed by bit pattern.
    """

    name: str
    bits_per_symbol: int
    constellation: np.ndarray = field(repr=False, compare=False)

    @property
    def order(self) -> int:
        """Constellation size M."""
        return 1 << self.bits_per_symbol

    # ------------------------------------------------------------------
    # Bit-level mapping (used by the WARP sample-level chain)
    # ------------------------------------------------------------------
    def map_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit array (values 0/1) to complex constellation symbols.

        The bit count must be a multiple of ``bits_per_symbol``.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % self.bits_per_symbol:
            raise ConfigurationError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        indices = groups @ weights
        return self.constellation[indices]

    def demap_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demap complex symbols back to a flat bit array."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        # Nearest-neighbour search against the constellation.
        distances = np.abs(symbols[:, None] - self.constellation[None, :])
        indices = np.argmin(distances, axis=1)
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        bits = (indices[:, None] >> shifts) & 1
        return bits.astype(np.uint8).ravel()

    # ------------------------------------------------------------------
    # Theoretical AWGN error rates
    # ------------------------------------------------------------------
    def ser(self, snr: "float | np.ndarray") -> "float | np.ndarray":
        """Symbol error probability at linear Es/N0 ``snr``."""
        snr = np.maximum(np.asarray(snr, dtype=float), 0.0)
        m = self.order
        if m == 2:
            result = q_function(np.sqrt(2.0 * snr))
        elif m == 4:
            p = q_function(np.sqrt(snr))
            result = 1.0 - (1.0 - p) ** 2
        else:
            # Square M-QAM.
            sqrt_m = math.isqrt(m)
            p_axis = 2.0 * (1.0 - 1.0 / sqrt_m) * q_function(
                np.sqrt(3.0 * snr / (m - 1))
            )
            result = 1.0 - (1.0 - p_axis) ** 2
        return result if np.ndim(result) else float(result)

    def ber(self, snr: "float | np.ndarray") -> "float | np.ndarray":
        """Bit error probability at linear Es/N0 ``snr`` (Gray mapping).

        Uses the standard approximations: exact for BPSK/QPSK, the
        nearest-neighbour Gray-mapping bound for square QAM.
        """
        snr = np.maximum(np.asarray(snr, dtype=float), 0.0)
        m = self.order
        k = self.bits_per_symbol
        if m == 2:
            result = q_function(np.sqrt(2.0 * snr))
        elif m == 4:
            # Per-bit SNR is Es/N0 / 2; Gray QPSK == two independent BPSK.
            result = q_function(np.sqrt(snr))
        else:
            sqrt_m = math.isqrt(m)
            result = (
                4.0
                / k
                * (1.0 - 1.0 / sqrt_m)
                * q_function(np.sqrt(3.0 * snr / (m - 1)))
            )
        result = np.minimum(result, 0.5)
        return result if np.ndim(result) else float(result)

    def ber_db(self, snr_db: "float | np.ndarray") -> "float | np.ndarray":
        """Bit error probability at Es/N0 given in dB."""
        return self.ber(db_to_linear(np.asarray(snr_db, dtype=float)))


BPSK = Modulation(
    name="BPSK",
    bits_per_symbol=1,
    constellation=np.array([1.0 + 0.0j, -1.0 + 0.0j]),
)

QPSK = Modulation(
    name="QPSK",
    bits_per_symbol=2,
    constellation=_square_qam_constellation(2),
)

QAM16 = Modulation(
    name="16QAM",
    bits_per_symbol=4,
    constellation=_square_qam_constellation(4),
)

QAM64 = Modulation(
    name="64QAM",
    bits_per_symbol=6,
    constellation=_square_qam_constellation(6),
)

MODULATIONS: Dict[str, Modulation] = {
    m.name: m for m in (BPSK, QPSK, QAM16, QAM64)
}

_ALIASES: Dict[str, str] = {
    "bpsk": "BPSK",
    "qpsk": "QPSK",
    "dqpsk": "QPSK",  # differential QPSK shares the QPSK constellation
    "16qam": "16QAM",
    "qam16": "16QAM",
    "64qam": "64QAM",
    "qam64": "64QAM",
}


def modulation_by_name(name: str) -> Modulation:
    """Look up a modulation by a case-insensitive name or alias."""
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        raise ConfigurationError(
            f"unknown modulation {name!r}; expected one of {sorted(_ALIASES)}"
        )
    return MODULATIONS[canonical]
