"""Analysis-level MIMO mode models: SDM vs STBC effective SNR.

802.11n offers two MIMO modes (Section 2): Spatial Division Multiplexing
(SDM — two parallel streams, double rate) and Space-Time Block Coding
(STBC — one stream, diversity). Vendors' auto-rate picks the mode from
link quality. For the network-level simulator we do not run the
sample-level chain per packet; instead each mode maps the link's
wideband SNR to an *effective per-stream SNR*:

* STBC (2x2 Alamouti): receive diversity and array gain make the
  post-combining SNR ~3 dB better than the raw link SNR, at single-stream
  rates.
* SDM: transmit power splits across two streams (−3 dB each) and stream
  separation costs a further margin, but the rate doubles.

This reproduces the empirically observed crossover: STBC wins on poor
links, SDM on strong ones.
"""

from __future__ import annotations

from enum import Enum

from ..errors import ConfigurationError

__all__ = ["MimoMode", "effective_snr_db", "STBC_GAIN_DB", "SDM_PENALTY_DB"]

# Post-MRC array/diversity gain of 2x2 Alamouti over a 1x1 link.
STBC_GAIN_DB = 3.0

# Per-stream SNR cost of SDM: 3 dB power split + ~2 dB linear-receiver
# stream-separation loss.
SDM_PENALTY_DB = 5.0


class MimoMode(Enum):
    """MIMO operating mode of an 802.11n link."""

    STBC = "stbc"
    SDM = "sdm"

    @property
    def n_streams(self) -> int:
        """Concurrent spatial streams carried in this mode."""
        return 1 if self is MimoMode.STBC else 2


def effective_snr_db(link_snr_db: float, mode: MimoMode) -> float:
    """Per-stream decodable SNR for ``mode`` given the raw link SNR."""
    if not isinstance(mode, MimoMode):
        raise ConfigurationError(f"expected a MimoMode, got {mode!r}")
    if mode is MimoMode.STBC:
        return link_snr_db + STBC_GAIN_DB
    return link_snr_db - SDM_PENALTY_DB
