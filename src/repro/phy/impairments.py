"""RF front-end impairments for the sample-level chain.

The paper notes its theory/measurement fit is imperfect because "the
noise may not be AWGN in such settings" — real radios add carrier
frequency offset (CFO), phase noise and IQ imbalance on top of thermal
noise. These impairments explain two practical facts the chain should
exhibit: differential (DQPSK) reception tolerates slow phase rotation
that breaks coherent detection, and pilot-aided scaling absorbs a
static phase but not a drifting one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import make_rng
from ..errors import ConfigurationError
from ..units import db_to_amplitude

__all__ = [
    "apply_cfo",
    "apply_phase_noise",
    "apply_iq_imbalance",
    "RfImpairments",
]


def apply_cfo(
    samples: np.ndarray, cfo_hz: float, sample_rate_hz: float
) -> np.ndarray:
    """Rotate a baseband signal by a carrier frequency offset.

    A CFO of f Hz multiplies sample n by ``exp(j 2π f n / fs)`` — a
    phase ramp that de-rotates constellations over time.
    """
    samples = np.asarray(samples, dtype=complex)
    if sample_rate_hz <= 0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz}"
        )
    n = np.arange(samples.size)
    return samples * np.exp(2j * np.pi * cfo_hz * n / sample_rate_hz)


def apply_phase_noise(
    samples: np.ndarray,
    linewidth_hz: float,
    sample_rate_hz: float,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Apply a Wiener phase-noise process of the given 3 dB linewidth.

    The phase performs a random walk with per-sample variance
    ``2π · linewidth / fs`` — the standard oscillator model.
    """
    samples = np.asarray(samples, dtype=complex)
    if sample_rate_hz <= 0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz}"
        )
    if linewidth_hz < 0:
        raise ConfigurationError(
            f"linewidth must be non-negative, got {linewidth_hz}"
        )
    if linewidth_hz == 0:
        return samples.copy()
    rng = make_rng(rng)
    variance = 2.0 * np.pi * linewidth_hz / sample_rate_hz
    steps = rng.normal(0.0, np.sqrt(variance), size=samples.size)
    phase = np.cumsum(steps)
    return samples * np.exp(1j * phase)


def apply_iq_imbalance(
    samples: np.ndarray,
    gain_imbalance_db: float = 0.0,
    phase_imbalance_deg: float = 0.0,
) -> np.ndarray:
    """Apply transmitter IQ gain/phase imbalance.

    Standard model: ``y = α·x + β·conj(x)`` with α, β derived from the
    gain mismatch g and phase mismatch φ. Perfect balance gives α = 1,
    β = 0.
    """
    samples = np.asarray(samples, dtype=complex)
    g = db_to_amplitude(gain_imbalance_db)
    phi = np.deg2rad(phase_imbalance_deg)
    alpha = (1.0 + g * np.exp(-1j * phi)) / 2.0
    beta = (1.0 - g * np.exp(1j * phi)) / 2.0
    return alpha * samples + beta * np.conj(samples)


@dataclass(frozen=True)
class RfImpairments:
    """A bundle of front-end impairments applied in a realistic order.

    Parameters
    ----------
    cfo_hz:
        Residual carrier frequency offset. 802.11 allows ±20 ppm per
        side; at 5.2 GHz a few kHz of residual CFO is typical after
        coarse correction.
    phase_noise_linewidth_hz:
        Oscillator linewidth for the Wiener phase-noise model.
    gain_imbalance_db, phase_imbalance_deg:
        Transmit IQ imbalance.
    """

    cfo_hz: float = 0.0
    phase_noise_linewidth_hz: float = 0.0
    gain_imbalance_db: float = 0.0
    phase_imbalance_deg: float = 0.0

    def apply(
        self,
        samples: np.ndarray,
        sample_rate_hz: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> np.ndarray:
        """IQ imbalance (at the transmitter), then CFO, then phase noise."""
        result = apply_iq_imbalance(
            samples, self.gain_imbalance_db, self.phase_imbalance_deg
        )
        if self.cfo_hz:
            result = apply_cfo(result, self.cfo_hz, sample_rate_hz)
        if self.phase_noise_linewidth_hz:
            result = apply_phase_noise(
                result, self.phase_noise_linewidth_hz, sample_rate_hz, rng
            )
        return result

    @property
    def is_clean(self) -> bool:
        """True when every impairment is disabled."""
        return (
            self.cfo_hz == 0.0
            and self.phase_noise_linewidth_hz == 0.0
            and self.gain_imbalance_db == 0.0
            and self.phase_imbalance_deg == 0.0
        )
