"""2x2 Alamouti space-time block coding (STBC).

The paper's WARP experiments transmit "over the air using 2x2 STBC
(Alamouti)" because on poor links the Ralink auto-rate falls back to the
STBC mode. This module implements the textbook Alamouti scheme: encode
symbol pairs across two antennas and two slots, decode with maximum-ratio
combining over all four spatial paths (diversity order 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["alamouti_encode", "alamouti_decode", "AlamoutiChannel"]


def alamouti_encode(symbols: np.ndarray) -> np.ndarray:
    """Encode a symbol stream into the 2-antenna Alamouti layout.

    Input length must be even. Returns an array of shape
    ``(2, n_slots)`` where row a is the stream for antenna a:

    =====  ==========  ==========
    slot   antenna 0   antenna 1
    =====  ==========  ==========
    t      s0          s1
    t+1    -conj(s1)   conj(s0)
    =====  ==========  ==========
    """
    symbols = np.asarray(symbols, dtype=complex).ravel()
    if symbols.size % 2:
        raise ConfigurationError(
            f"Alamouti encodes symbol pairs; got odd count {symbols.size}"
        )
    s0 = symbols[0::2]
    s1 = symbols[1::2]
    tx0 = np.empty(symbols.size, dtype=complex)
    tx1 = np.empty(symbols.size, dtype=complex)
    tx0[0::2] = s0
    tx0[1::2] = -np.conj(s1)
    tx1[0::2] = s1
    tx1[1::2] = np.conj(s0)
    # Split power between the two antennas so total transmit energy
    # matches the single-antenna case.
    return np.vstack([tx0, tx1]) / np.sqrt(2.0)


@dataclass
class AlamoutiChannel:
    """A 2x2 flat MIMO channel ``h[rx, tx]`` assumed static per pair."""

    h: np.ndarray

    def __post_init__(self) -> None:
        self.h = np.asarray(self.h, dtype=complex)
        if self.h.shape != (2, 2):
            raise ConfigurationError(f"expected a 2x2 channel, got {self.h.shape}")

    def transmit(
        self,
        encoded: np.ndarray,
    ) -> np.ndarray:
        """Pass the 2-antenna encoded streams through the channel.

        Returns received streams of shape (2, n_slots) without noise
        (compose with :func:`repro.phy.channelmodel.awgn`).
        """
        encoded = np.asarray(encoded, dtype=complex)
        if encoded.ndim != 2 or encoded.shape[0] != 2:
            raise ConfigurationError(
                f"expected encoded shape (2, n), got {encoded.shape}"
            )
        return self.h @ encoded

    def effective_gain(self) -> float:
        """Post-combining channel power gain, ||H||_F^2 / 2.

        Alamouti with two receive antennas collects the energy of all
        four paths; the 1/2 accounts for the transmit power split.
        """
        return float(np.sum(np.abs(self.h) ** 2) / 2.0)


def alamouti_decode(received: np.ndarray, channel: AlamoutiChannel) -> np.ndarray:
    """Maximum-ratio Alamouti combining with perfect channel knowledge.

    ``received`` has shape (2, n_slots) — one row per receive antenna.
    Returns the decoded symbol estimates (length ``n_slots``), scaled so
    that a noiseless round trip reproduces the input symbols.
    """
    received = np.asarray(received, dtype=complex)
    if received.ndim != 2 or received.shape[0] != 2 or received.shape[1] % 2:
        raise ConfigurationError(
            f"expected received shape (2, even n), got {received.shape}"
        )
    h = channel.h
    n_pairs = received.shape[1] // 2
    estimates = np.empty(received.shape[1], dtype=complex)
    # Norm of the channel seen by each symbol after combining.
    norm = np.sum(np.abs(h) ** 2)
    for p in range(n_pairs):
        r_t = received[:, 2 * p]        # slot t, both RX antennas
        r_t1 = received[:, 2 * p + 1]   # slot t+1
        s0_hat = 0.0 + 0.0j
        s1_hat = 0.0 + 0.0j
        for rx in range(2):
            h0 = h[rx, 0]
            h1 = h[rx, 1]
            s0_hat += np.conj(h0) * r_t[rx] + h1 * np.conj(r_t1[rx])
            s1_hat += np.conj(h1) * r_t[rx] - h0 * np.conj(r_t1[rx])
        estimates[2 * p] = s0_hat / norm
        estimates[2 * p + 1] = s1_hat / norm
    # Undo the sqrt(2) transmit power split applied by the encoder.
    return estimates * np.sqrt(2.0)
