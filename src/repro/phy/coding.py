"""The 802.11 convolutional code and its coded-BER union bounds.

802.11a/g/n use the K=7 (133, 171) convolutional code at rate 1/2,
punctured to 2/3, 3/4 and (for 802.11n MCS 7/15) 5/6. The paper's
link-quality estimator needs "coded BER from SNR"; we provide it through
the classic hard-decision union bound over the code's distance spectrum,
which reproduces the steep coded waterfall that separates good links from
poor ones in Figures 5 and 6.

Distance spectra (free distance and the first information-error weights
``c_d``) are the published values for the standard punctured K=7 code
(Haccoun & Begin, IEEE Trans. Comm. 1989).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy.special import comb

from ..errors import ConfigurationError
from ..units import linear_to_db

__all__ = [
    "ConvolutionalCode",
    "CODE_RATES",
    "code_by_rate",
    "pairwise_error_probability",
]


def pairwise_error_probability(d: int, p: "float | np.ndarray") -> "float | np.ndarray":
    """Probability that hard-decision Viterbi picks a path at distance ``d``.

    ``p`` is the channel (uncoded) bit error probability. Standard
    formula: the decoder errs when more than d/2 of the d differing bits
    flip; ties (even ``d``) count half.
    """
    if d <= 0:
        raise ConfigurationError(f"distance must be positive, got {d}")
    p = np.asarray(p, dtype=float)
    p = np.clip(p, 0.0, 0.5)
    q = 1.0 - p
    result = np.zeros_like(p)
    half = d // 2
    if d % 2:
        for k in range(half + 1, d + 1):
            result += comb(d, k) * p**k * q ** (d - k)
    else:
        for k in range(half + 1, d + 1):
            result += comb(d, k) * p**k * q ** (d - k)
        result += 0.5 * comb(d, half) * p**half * q**half
    return result if np.ndim(result) else float(result)


@dataclass(frozen=True)
class ConvolutionalCode:
    """A punctured K=7 convolutional code described by its distance spectrum.

    Attributes
    ----------
    rate:
        Information bits per coded bit (1/2, 2/3, 3/4, 5/6).
    free_distance:
        Minimum Hamming distance between distinct codewords.
    weights:
        Information-error weights ``c_d`` for d = free_distance,
        free_distance+1, ... (one entry per distance).
    """

    rate: float
    free_distance: int
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not 0 < self.rate < 1:
            raise ConfigurationError(f"code rate must be in (0, 1), got {self.rate}")
        if self.free_distance <= 0:
            raise ConfigurationError(
                f"free distance must be positive, got {self.free_distance}"
            )

    def coded_ber(self, channel_ber: "float | np.ndarray") -> "float | np.ndarray":
        """Post-Viterbi BER from the raw channel BER (hard decisions).

        Union bound ``Pb <= sum_d c_d * P2(d, p)`` clipped to [0, 0.5].
        The bound is loose near p = 0.5 but tight in the waterfall
        region, which is where link-width decisions are made.
        """
        p = np.clip(np.asarray(channel_ber, dtype=float), 0.0, 0.5)
        total = np.zeros_like(p)
        for offset, c_d in enumerate(self.weights):
            if c_d == 0:
                continue
            d = self.free_distance + offset
            total += c_d * pairwise_error_probability(d, p)
        total = np.minimum(total, 0.5)
        # The union bound can only make things worse than uncoded at very
        # high channel BER; a real Viterbi decoder never exceeds ~0.5.
        result = np.where(p >= 0.5, 0.5, total)
        return result if np.ndim(result) else float(result)

    def coding_gain_db(self) -> float:
        """Asymptotic hard-decision coding gain, 10*log10(R * dfree / 2)."""
        return linear_to_db(self.rate * self.free_distance / 2.0)


# Published distance spectra for the K=7 (133,171) code and its standard
# puncturings. ``weights`` are information-bit error weights c_d starting
# at d = free_distance.
CODE_RATES: Dict[float, ConvolutionalCode] = {
    1 / 2: ConvolutionalCode(
        rate=1 / 2,
        free_distance=10,
        weights=(36.0, 0.0, 211.0, 0.0, 1404.0, 0.0, 11633.0),
    ),
    2 / 3: ConvolutionalCode(
        rate=2 / 3,
        free_distance=6,
        weights=(3.0, 70.0, 285.0, 1276.0, 6160.0, 27128.0),
    ),
    3 / 4: ConvolutionalCode(
        rate=3 / 4,
        free_distance=5,
        weights=(42.0, 201.0, 1492.0, 10469.0, 62935.0),
    ),
    5 / 6: ConvolutionalCode(
        rate=5 / 6,
        free_distance=4,
        weights=(92.0, 528.0, 8694.0, 79453.0),
    ),
}


def code_by_rate(rate: float, tolerance: float = 1e-9) -> ConvolutionalCode:
    """Look up the standard 802.11 code for ``rate`` (1/2, 2/3, 3/4, 5/6)."""
    for known, code in CODE_RATES.items():
        if abs(known - rate) <= tolerance:
            return code
    raise ConfigurationError(
        f"no 802.11 convolutional code with rate {rate}; "
        f"available: {sorted(CODE_RATES)}"
    )
