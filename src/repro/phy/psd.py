"""Power spectral density estimation for the Fig 1 experiment.

A Welch-periodogram PSD of the generated OFDM waveform shows the ~3 dB
per-subcarrier energy drop when the same transmit power is spread over a
40 MHz (108-data-subcarrier) channel instead of a 20 MHz one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal as _signal

from ..errors import ConfigurationError
from ..units import linear_to_db

__all__ = ["welch_psd", "per_subcarrier_power_db", "occupied_band_level_db"]


def welch_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    segment_length: int = 256,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD estimate of a complex baseband waveform.

    Returns ``(freqs_hz, psd_db)`` with frequencies centred on 0 Hz
    (two-sided, fftshifted) and the PSD in dB (10*log10 of the density).
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.size < segment_length:
        raise ConfigurationError(
            f"need at least {segment_length} samples, got {samples.size}"
        )
    freqs, psd = _signal.welch(
        samples,
        fs=sample_rate_hz,
        nperseg=segment_length,
        return_onesided=False,
        scaling="density",
    )
    order = np.argsort(freqs)
    return freqs[order], linear_to_db(psd[order])


def per_subcarrier_power_db(
    frequency_symbols: np.ndarray,
) -> np.ndarray:
    """Average power per subcarrier (dB) from frequency-domain symbols.

    ``frequency_symbols`` has shape (n_symbols, n_subcarriers).
    """
    symbols = np.asarray(frequency_symbols, dtype=complex)
    if symbols.ndim != 2 or symbols.size == 0:
        raise ConfigurationError(
            f"expected non-empty (n_symbols, n_subcarriers), got {symbols.shape}"
        )
    power = np.mean(np.abs(symbols) ** 2, axis=0)
    return linear_to_db(power)


def occupied_band_level_db(
    freqs_hz: np.ndarray,
    psd_db: np.ndarray,
    band_hz: float,
    guard_fraction: float = 0.2,
) -> float:
    """Median PSD level across the occupied part of a band.

    Averages the central ``1 - guard_fraction`` of ±band/2, skipping the
    spectral skirts, to give one representative per-subcarrier level —
    the quantity compared between 20 and 40 MHz in Fig 1.
    """
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    psd_db = np.asarray(psd_db, dtype=float)
    if freqs_hz.shape != psd_db.shape:
        raise ConfigurationError("freqs and psd must have matching shapes")
    if band_hz <= 0:
        raise ConfigurationError(f"band must be positive, got {band_hz}")
    half = band_hz / 2.0 * (1.0 - guard_fraction)
    mask = np.abs(freqs_hz) <= half
    if not np.any(mask):
        raise ConfigurationError("no PSD bins fall inside the requested band")
    return float(np.median(psd_db[mask]))
