"""802.11 OFDM parameter sets for 20 MHz, 40 MHz (bonded) and legacy bands.

Section 3.1 of the paper: legacy 802.11a/g uses 64 subcarriers (48 data),
802.11n uses 52 data subcarriers in a 20 MHz channel and, with channel
bonding, 108 data subcarriers over 40 MHz. These counts drive both the
nominal bit rates and the per-subcarrier energy penalty of bonding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError

__all__ = [
    "OfdmParams",
    "OFDM_LEGACY",
    "OFDM_20MHZ",
    "OFDM_40MHZ",
    "GUARD_INTERVAL_LONG_S",
    "GUARD_INTERVAL_SHORT_S",
    "USEFUL_SYMBOL_S",
    "nominal_data_rate_mbps",
]

# OFDM symbol timing (802.11n): 3.2 us useful part, 800 ns long GI
# (4.0 us symbol) or 400 ns short GI (3.6 us symbol).
USEFUL_SYMBOL_S = 3.2e-6
GUARD_INTERVAL_LONG_S = 0.8e-6
GUARD_INTERVAL_SHORT_S = 0.4e-6


def _ht20_data_indices() -> Tuple[int, ...]:
    """Data subcarrier indices for HT20: ±1..±28 minus pilots at ±7, ±21."""
    pilots = {-21, -7, 7, 21}
    return tuple(
        k for k in range(-28, 29) if k != 0 and k not in pilots
    )


def _ht40_data_indices() -> Tuple[int, ...]:
    """Data subcarrier indices for HT40: ±2..±58 minus pilots at ±11, ±25, ±53."""
    pilots = {-53, -25, -11, 11, 25, 53}
    return tuple(
        k for k in range(-58, 59) if abs(k) >= 2 and k not in pilots
    )


def _legacy_data_indices() -> Tuple[int, ...]:
    """Data subcarrier indices for legacy 11a/g: ±1..±26 minus pilots."""
    pilots = {-21, -7, 7, 21}
    return tuple(
        k for k in range(-26, 27) if k != 0 and k not in pilots
    )


@dataclass(frozen=True)
class OfdmParams:
    """Immutable description of one OFDM numerology.

    Attributes
    ----------
    name:
        Human-readable label ("HT20", "HT40", "legacy").
    bandwidth_mhz:
        Occupied channel bandwidth.
    fft_size:
        IFFT/FFT length used by the baseband chain (64 for 20 MHz,
        128 for 40 MHz, exactly as in the paper's WARP implementation).
    data_subcarriers:
        Frequency indices (relative to the channel centre) that carry data.
    pilot_subcarriers:
        Frequency indices carrying pilot tones.
    """

    name: str
    bandwidth_mhz: float
    fft_size: int
    data_subcarriers: Tuple[int, ...]
    pilot_subcarriers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.fft_size <= 0 or self.fft_size & (self.fft_size - 1):
            raise ConfigurationError(
                f"fft_size must be a positive power of two, got {self.fft_size}"
            )
        out_of_range = [
            k
            for k in (*self.data_subcarriers, *self.pilot_subcarriers)
            if not -self.fft_size // 2 <= k < self.fft_size // 2
        ]
        if out_of_range:
            raise ConfigurationError(
                f"subcarrier indices {out_of_range} exceed fft_size {self.fft_size}"
            )
        overlap = set(self.data_subcarriers) & set(self.pilot_subcarriers)
        if overlap:
            raise ConfigurationError(
                f"subcarriers {sorted(overlap)} are both data and pilot"
            )

    @property
    def n_data(self) -> int:
        """Number of data subcarriers (52 for HT20, 108 for HT40)."""
        return len(self.data_subcarriers)

    @property
    def n_pilots(self) -> int:
        """Number of pilot subcarriers."""
        return len(self.pilot_subcarriers)

    @property
    def n_used(self) -> int:
        """Total occupied subcarriers (data + pilots)."""
        return self.n_data + self.n_pilots

    @property
    def subcarrier_spacing_hz(self) -> float:
        """Subcarrier spacing: 312.5 kHz for all 802.11 OFDM numerologies."""
        return self.bandwidth_mhz * 1e6 / self.fft_size

    def symbol_duration_s(self, short_gi: bool = False) -> float:
        """Full OFDM symbol duration including the guard interval."""
        gi = GUARD_INTERVAL_SHORT_S if short_gi else GUARD_INTERVAL_LONG_S
        return USEFUL_SYMBOL_S + gi


OFDM_LEGACY = OfdmParams(
    name="legacy",
    bandwidth_mhz=20.0,
    fft_size=64,
    data_subcarriers=_legacy_data_indices(),
    pilot_subcarriers=(-21, -7, 7, 21),
)

OFDM_20MHZ = OfdmParams(
    name="HT20",
    bandwidth_mhz=20.0,
    fft_size=64,
    data_subcarriers=_ht20_data_indices(),
    pilot_subcarriers=(-21, -7, 7, 21),
)

OFDM_40MHZ = OfdmParams(
    name="HT40",
    bandwidth_mhz=40.0,
    fft_size=128,
    data_subcarriers=_ht40_data_indices(),
    pilot_subcarriers=(-53, -25, -11, 11, 25, 53),
)


def nominal_data_rate_mbps(
    params: OfdmParams,
    bits_per_symbol: int,
    code_rate: float,
    n_streams: int = 1,
    short_gi: bool = False,
) -> float:
    """Nominal PHY data rate for one modulation-and-coding choice.

    ``rate = n_data * bits * code_rate * streams / symbol_duration``

    Examples (matching the 802.11n standard): HT20, 64-QAM 5/6, one
    stream, long GI -> 65 Mbps; HT40 -> 135 Mbps; with short GI
    -> 72.2 / 150 Mbps.
    """
    if bits_per_symbol <= 0:
        raise ConfigurationError(
            f"bits_per_symbol must be positive, got {bits_per_symbol}"
        )
    if not 0 < code_rate <= 1:
        raise ConfigurationError(f"code_rate must be in (0, 1], got {code_rate}")
    if n_streams < 1:
        raise ConfigurationError(f"n_streams must be >= 1, got {n_streams}")
    bits_per_ofdm_symbol = params.n_data * bits_per_symbol * code_rate * n_streams
    return bits_per_ofdm_symbol / params.symbol_duration_s(short_gi) / 1e6
