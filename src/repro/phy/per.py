"""Packet error rate from bit error rate (Eq. 6) and derived throughput.

The paper assumes independent, uniformly distributed bit errors within a
packet: ``PER = 1 - (1 - BER)^L`` with ``L`` the packet length in bits.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError

__all__ = ["per_from_ber", "ber_from_per", "effective_throughput_mbps"]


def per_from_ber(
    ber: "float | np.ndarray", packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
) -> "float | np.ndarray":
    """Packet error probability under independent bit errors (Eq. 6)."""
    if packet_bytes <= 0:
        raise ConfigurationError(f"packet size must be positive, got {packet_bytes}")
    ber = np.clip(np.asarray(ber, dtype=float), 0.0, 1.0)
    bits = 8 * packet_bytes
    # log1p keeps precision for tiny BERs where (1-ber)**bits underflows
    # the direct power computation.
    per = 1.0 - np.exp(bits * np.log1p(-np.minimum(ber, 1.0 - 1e-15)))
    per = np.clip(per, 0.0, 1.0)
    return per if np.ndim(per) else float(per)


def ber_from_per(
    per: "float | np.ndarray", packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
) -> "float | np.ndarray":
    """Invert Eq. 6: the uniform BER that would yield ``per``."""
    if packet_bytes <= 0:
        raise ConfigurationError(f"packet size must be positive, got {packet_bytes}")
    per = np.clip(np.asarray(per, dtype=float), 0.0, 1.0 - 1e-15)
    bits = 8 * packet_bytes
    ber = 1.0 - np.exp(np.log1p(-per) / bits)
    return ber if np.ndim(ber) else float(ber)


def effective_throughput_mbps(
    nominal_rate_mbps: "float | np.ndarray", per: "float | np.ndarray"
) -> "float | np.ndarray":
    """Goodput model used throughout the paper: ``T = (1 - PER) * R``."""
    rate = np.asarray(nominal_rate_mbps, dtype=float)
    per = np.clip(np.asarray(per, dtype=float), 0.0, 1.0)
    result = rate * (1.0 - per)
    return result if np.ndim(result) else float(result)
