"""Uncoded and coded BER as functions of per-subcarrier SNR.

This is the "BER estimation module" of ACORN's link-quality estimator
(Section 4.2): given a (possibly width-calibrated) SNR, produce the
theoretical BER from Rappaport's formulas, optionally pushed through the
802.11 convolutional code.
"""

from __future__ import annotations

import numpy as np

from .coding import code_by_rate
from .modulation import Modulation, modulation_by_name

__all__ = ["uncoded_ber", "coded_ber"]


def _resolve(modulation: "Modulation | str") -> Modulation:
    if isinstance(modulation, Modulation):
        return modulation
    return modulation_by_name(modulation)


def uncoded_ber(
    modulation: "Modulation | str", snr_db: "float | np.ndarray"
) -> "float | np.ndarray":
    """Raw channel BER at per-subcarrier Es/N0 ``snr_db`` (in dB).

    Width-independent by construction — for a fixed *SNR* the channel
    width does not matter (Fig 3a); bonding hurts because it lowers the
    SNR at fixed transmit power (Fig 3b).
    """
    return _resolve(modulation).ber_db(snr_db)


def coded_ber(
    modulation: "Modulation | str",
    code_rate: float,
    snr_db: "float | np.ndarray",
) -> "float | np.ndarray":
    """Post-Viterbi BER for a modulation-and-coding pair at ``snr_db``.

    Chains the modulation's AWGN BER into the punctured convolutional
    code's hard-decision union bound.
    """
    raw = uncoded_ber(modulation, snr_db)
    return code_by_rate(code_rate).coded_ber(raw)
