"""Sample- and subcarrier-level wireless channel models.

Used by the WARP baseband substrate (Section 3.1 experiments): additive
white Gaussian noise at a target SNR, flat fading, and independent
per-subcarrier Rayleigh/Rician fading — the mechanism behind the paper's
remark that "each subcarrier experiences a different fade", which makes a
108-subcarrier symbol more error prone than a 52-subcarrier one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import make_rng
from ..errors import ConfigurationError
from ..units import db_to_linear, linear_to_db

__all__ = [
    "awgn",
    "measure_snr_db",
    "rayleigh_subcarrier_gains",
    "rician_subcarrier_gains",
    "FadingChannel",
]


def awgn(
    samples: np.ndarray,
    snr_db: float,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Add complex white Gaussian noise for a target per-sample SNR.

    The noise variance is scaled to the *measured* power of ``samples``,
    so the realised SNR matches ``snr_db`` regardless of signal scaling.
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.size == 0:
        raise ConfigurationError("cannot add noise to an empty signal")
    rng = make_rng(rng)
    signal_power = float(np.mean(np.abs(samples) ** 2))
    noise_power = signal_power / db_to_linear(snr_db)
    scale = np.sqrt(noise_power / 2.0)
    noise = scale * (
        rng.standard_normal(samples.shape) + 1j * rng.standard_normal(samples.shape)
    )
    return samples + noise


def measure_snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR between a clean reference and its noisy version."""
    clean = np.asarray(clean, dtype=complex)
    noisy = np.asarray(noisy, dtype=complex)
    if clean.shape != noisy.shape:
        raise ConfigurationError(
            f"shape mismatch: {clean.shape} vs {noisy.shape}"
        )
    signal_power = float(np.mean(np.abs(clean) ** 2))
    noise_power = float(np.mean(np.abs(noisy - clean) ** 2))
    if noise_power == 0:
        return float("inf")
    return float(linear_to_db(signal_power / noise_power))


def rayleigh_subcarrier_gains(
    n_subcarriers: int,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Independent unit-mean-power Rayleigh gains, one per subcarrier."""
    if n_subcarriers <= 0:
        raise ConfigurationError(
            f"subcarrier count must be positive, got {n_subcarriers}"
        )
    rng = make_rng(rng)
    return (
        rng.standard_normal(n_subcarriers) + 1j * rng.standard_normal(n_subcarriers)
    ) / np.sqrt(2.0)


def rician_subcarrier_gains(
    n_subcarriers: int,
    k_factor_db: float = 6.0,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Independent Rician gains with line-of-sight factor ``k_factor_db``.

    Enterprise indoor links usually have a dominant path; Rician fading
    with K around 6 dB is the common model.
    """
    if n_subcarriers <= 0:
        raise ConfigurationError(
            f"subcarrier count must be positive, got {n_subcarriers}"
        )
    rng = make_rng(rng)
    k = db_to_linear(k_factor_db)
    los = np.sqrt(k / (k + 1.0))
    scatter_scale = np.sqrt(1.0 / (2.0 * (k + 1.0)))
    scatter = scatter_scale * (
        rng.standard_normal(n_subcarriers) + 1j * rng.standard_normal(n_subcarriers)
    )
    return los + scatter


@dataclass
class FadingChannel:
    """A frozen per-subcarrier fading realisation applied in frequency domain.

    Parameters
    ----------
    gains:
        Complex gain per subcarrier (as produced by
        :func:`rayleigh_subcarrier_gains` / :func:`rician_subcarrier_gains`).
    """

    gains: np.ndarray

    def __post_init__(self) -> None:
        self.gains = np.asarray(self.gains, dtype=complex)
        if self.gains.ndim != 1 or self.gains.size == 0:
            raise ConfigurationError("gains must be a non-empty 1-D array")

    @property
    def n_subcarriers(self) -> int:
        """Number of subcarriers this realisation covers."""
        return int(self.gains.size)

    def apply(self, frequency_symbols: np.ndarray) -> np.ndarray:
        """Multiply frequency-domain symbols by the per-subcarrier gains.

        ``frequency_symbols`` may be 1-D (one OFDM symbol) or 2-D with
        shape (n_symbols, n_subcarriers).
        """
        symbols = np.asarray(frequency_symbols, dtype=complex)
        if symbols.shape[-1] != self.n_subcarriers:
            raise ConfigurationError(
                f"expected trailing dimension {self.n_subcarriers}, "
                f"got {symbols.shape[-1]}"
            )
        return symbols * self.gains

    def equalize(self, frequency_symbols: np.ndarray) -> np.ndarray:
        """Zero-forcing equalisation (divide by the known gains)."""
        symbols = np.asarray(frequency_symbols, dtype=complex)
        if symbols.shape[-1] != self.n_subcarriers:
            raise ConfigurationError(
                f"expected trailing dimension {self.n_subcarriers}, "
                f"got {symbols.shape[-1]}"
            )
        safe = np.where(np.abs(self.gains) < 1e-12, 1e-12, self.gains)
        return symbols / safe
