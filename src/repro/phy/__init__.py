"""Physical-layer substrate: OFDM, modulation, coding, noise, BER/PER.

This package implements the signal-level machinery behind Section 3 of the
paper ("Channel bonding is not panacea"): the 20/40 MHz OFDM parameter
sets, constellations, the 802.11 convolutional code, the thermal-noise
floor, and the BER/PER models the ACORN estimator relies on.
"""

from .ofdm import (
    OFDM_20MHZ,
    OFDM_40MHZ,
    OFDM_LEGACY,
    OfdmParams,
    nominal_data_rate_mbps,
)
from .modulation import (
    BPSK,
    QPSK,
    QAM16,
    QAM64,
    Modulation,
    modulation_by_name,
)
from .coding import CODE_RATES, ConvolutionalCode, code_by_rate
from .noise import noise_floor_dbm, snr_db, snr_per_subcarrier_db
from .ber import coded_ber, uncoded_ber
from .per import effective_throughput_mbps, per_from_ber
from .psd import per_subcarrier_power_db, welch_psd
from .convolutional import ConvolutionalCodec
from .sdm import SdmChannel, sdm_decode, sdm_encode

__all__ = [
    "OFDM_20MHZ",
    "OFDM_40MHZ",
    "OFDM_LEGACY",
    "OfdmParams",
    "nominal_data_rate_mbps",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "Modulation",
    "modulation_by_name",
    "CODE_RATES",
    "ConvolutionalCode",
    "code_by_rate",
    "noise_floor_dbm",
    "snr_db",
    "snr_per_subcarrier_db",
    "uncoded_ber",
    "coded_ber",
    "per_from_ber",
    "effective_throughput_mbps",
    "welch_psd",
    "per_subcarrier_power_db",
    "ConvolutionalCodec",
    "SdmChannel",
    "sdm_encode",
    "sdm_decode",
]
