"""Thermal noise floor and SNR accounting, including the bonding penalty.

Equation 1 of the paper: ``N (dBm) = -174 + 10 * log10(B)``. Doubling the
bandwidth from 20 to 40 MHz raises the total noise floor by ~3 dB while
the fixed total transmit power is spread over 108 instead of 52 data
subcarriers — together the per-subcarrier SNR drops by ~3 dB when channel
bonding is active. This module centralises that arithmetic.
"""

from __future__ import annotations

from ..config import DEFAULT_NOISE_FIGURE_DB
from ..errors import ConfigurationError
from ..units import linear_to_db
from ..units import noise_floor_dbm as thermal_noise_floor_dbm
from .ofdm import OFDM_20MHZ, OFDM_40MHZ, OfdmParams

__all__ = [
    "noise_floor_dbm",
    "noise_per_subcarrier_dbm",
    "snr_db",
    "snr_per_subcarrier_db",
    "subcarrier_energy_offset_db",
    "cb_snr_penalty_db",
]


def noise_floor_dbm(
    bandwidth_hz: float, noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB
) -> float:
    """Total noise power in dBm over ``bandwidth_hz`` (Eq. 1 + noise figure)."""
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_hz}")
    return thermal_noise_floor_dbm(bandwidth_hz) + noise_figure_db


def noise_per_subcarrier_dbm(
    params: OfdmParams, noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB
) -> float:
    """Noise power falling within a single subcarrier's bandwidth.

    The subcarrier spacing is 312.5 kHz for both 20 and 40 MHz channels,
    so this is (nearly) width-independent — the paper's "4 % reduction"
    observation.
    """
    return noise_floor_dbm(params.subcarrier_spacing_hz, noise_figure_db)


def subcarrier_energy_offset_db(params: OfdmParams) -> float:
    """Per-subcarrier transmit energy relative to a 52-subcarrier HT20 signal.

    With total power fixed, energy per subcarrier scales as 1/n_used.
    For HT40 (114 used vs 56 used) this is ~-3.1 dB — the Fig 1 PSD drop.
    """
    return -linear_to_db(params.n_used / OFDM_20MHZ.n_used)


def cb_snr_penalty_db() -> float:
    """Per-subcarrier SNR penalty of bonding, from first principles.

    Energy per subcarrier falls by 10*log10(114/56) ≈ 3.1 dB while noise
    per subcarrier is unchanged; the paper rounds this to 3 dB.
    """
    return -subcarrier_energy_offset_db(OFDM_40MHZ)


def snr_db(
    tx_power_dbm: float,
    path_loss_db: float,
    bandwidth_hz: float,
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
) -> float:
    """Wideband SNR of a link from the link budget."""
    received_dbm = tx_power_dbm - path_loss_db
    return received_dbm - noise_floor_dbm(bandwidth_hz, noise_figure_db)


def snr_per_subcarrier_db(
    tx_power_dbm: float,
    path_loss_db: float,
    params: OfdmParams,
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
) -> float:
    """Per-subcarrier Es/N0 for a link using numerology ``params``.

    The received power divides evenly over the used subcarriers; each
    subcarrier sees noise over one subcarrier spacing. This is the SNR
    that the modulation/coding error models consume, and it is where the
    ~3 dB bonding penalty materialises.
    """
    received_dbm = tx_power_dbm - path_loss_db
    per_subcarrier_signal = received_dbm - linear_to_db(params.n_used)
    return per_subcarrier_signal - noise_per_subcarrier_dbm(params, noise_figure_db)
