"""The 802.11 convolutional codec: K=7 (133, 171) encoder and Viterbi.

:mod:`repro.phy.coding` models coded BER analytically through the union
bound; this module implements the actual machinery — the constraint-
length-7 encoder with generators 133/171 (octal), the standard 802.11
puncturing patterns for rates 2/3, 3/4 and 5/6, and a hard-decision
Viterbi decoder with erasure-aware depuncturing. The two are validated
against each other in the test suite, and the coded WARP harness
(:mod:`repro.warp.codedmac`) runs packets through this codec end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "CONSTRAINT_LENGTH",
    "GENERATORS_OCTAL",
    "PUNCTURING_PATTERNS",
    "ConvolutionalCodec",
]

CONSTRAINT_LENGTH = 7
GENERATORS_OCTAL = (0o133, 0o171)

# Standard 802.11 puncturing patterns, one (A, B) keep-flag pair per
# input bit. A is the g0 output stream, B the g1 stream.
PUNCTURING_PATTERNS: Dict[float, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {
    1 / 2: ((1,), (1,)),
    2 / 3: ((1, 1), (1, 0)),
    3 / 4: ((1, 1, 0), (1, 0, 1)),
    5 / 6: ((1, 1, 0, 1, 0), (1, 0, 1, 0, 1)),
}

_N_STATES = 1 << (CONSTRAINT_LENGTH - 1)

# Erasure marker inside the depunctured hard-bit stream: contributes no
# branch metric either way.
_ERASURE = -1


def _output_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-(state, input) next-state and the two generator outputs.

    The state is the previous K-1 input bits, most recent in the MSB
    (the convention where next_state = (state >> 1) | (bit << 5)).
    """
    states = np.arange(_N_STATES)
    next_state = np.empty((_N_STATES, 2), dtype=np.int64)
    out_a = np.empty((_N_STATES, 2), dtype=np.uint8)
    out_b = np.empty((_N_STATES, 2), dtype=np.uint8)
    for bit in (0, 1):
        register = (bit << (CONSTRAINT_LENGTH - 1)) | states
        next_state[:, bit] = register >> 1
        for table, generator in ((out_a, GENERATORS_OCTAL[0]), (out_b, GENERATORS_OCTAL[1])):
            taps = register & generator
            # Parity of the tapped register bits.
            parity = np.zeros(_N_STATES, dtype=np.uint8)
            value = taps.copy()
            while np.any(value):
                parity ^= (value & 1).astype(np.uint8)
                value >>= 1
            table[:, bit] = parity
    return next_state, out_a, out_b


_NEXT_STATE, _OUT_A, _OUT_B = _output_tables()


@dataclass(frozen=True)
class ConvolutionalCodec:
    """Encoder/decoder pair for one punctured rate.

    Parameters
    ----------
    rate:
        One of 1/2, 2/3, 3/4, 5/6 (the 802.11 rates).
    """

    rate: float = 1 / 2

    def __post_init__(self) -> None:
        if self._pattern() is None:
            raise ConfigurationError(
                f"unsupported code rate {self.rate}; "
                f"available: {sorted(PUNCTURING_PATTERNS)}"
            )

    def _pattern(self):
        for known, pattern in PUNCTURING_PATTERNS.items():
            if abs(known - self.rate) < 1e-9:
                return pattern
        return None

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode (with K-1 zero-tail termination) and puncture.

        Returns the coded bit stream. The tail drives the encoder back
        to the all-zero state so the decoder can anchor its traceback.
        """
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        if bits.size == 0:
            raise ConfigurationError("cannot encode an empty bit stream")
        padded = np.concatenate(
            [bits, np.zeros(CONSTRAINT_LENGTH - 1, dtype=np.uint8)]
        )
        stream_a = np.empty(padded.size, dtype=np.uint8)
        stream_b = np.empty(padded.size, dtype=np.uint8)
        state = 0
        for index, bit in enumerate(padded):
            stream_a[index] = _OUT_A[state, bit]
            stream_b[index] = _OUT_B[state, bit]
            state = _NEXT_STATE[state, bit]
        return self._puncture(stream_a, stream_b)

    def _puncture(self, stream_a: np.ndarray, stream_b: np.ndarray) -> np.ndarray:
        pattern_a, pattern_b = self._pattern()
        period = len(pattern_a)
        keep_a = np.tile(pattern_a, -(-stream_a.size // period))[: stream_a.size]
        keep_b = np.tile(pattern_b, -(-stream_b.size // period))[: stream_b.size]
        output = []
        for index in range(stream_a.size):
            if keep_a[index]:
                output.append(stream_a[index])
            if keep_b[index]:
                output.append(stream_b[index])
        return np.asarray(output, dtype=np.uint8)

    def coded_length(self, n_information_bits: int) -> int:
        """Number of coded bits produced for ``n_information_bits``."""
        if n_information_bits <= 0:
            raise ConfigurationError(
                f"bit count must be positive, got {n_information_bits}"
            )
        total = n_information_bits + CONSTRAINT_LENGTH - 1
        pattern_a, pattern_b = self._pattern()
        period = len(pattern_a)
        kept_per_period = sum(pattern_a) + sum(pattern_b)
        full, remainder = divmod(total, period)
        kept = full * kept_per_period
        for index in range(remainder):
            kept += pattern_a[index] + pattern_b[index]
        return kept

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _depuncture(
        self, coded: np.ndarray, n_information_bits: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-insert erasures; returns (stream_a, stream_b) with -1 holes."""
        total = n_information_bits + CONSTRAINT_LENGTH - 1
        pattern_a, pattern_b = self._pattern()
        period = len(pattern_a)
        stream_a = np.full(total, _ERASURE, dtype=np.int8)
        stream_b = np.full(total, _ERASURE, dtype=np.int8)
        cursor = 0
        for index in range(total):
            if pattern_a[index % period]:
                stream_a[index] = coded[cursor]
                cursor += 1
            if pattern_b[index % period]:
                stream_b[index] = coded[cursor]
                cursor += 1
        if cursor != coded.size:
            raise ConfigurationError(
                f"coded stream has {coded.size} bits, expected {cursor}"
            )
        return stream_a, stream_b

    def decode(self, coded: np.ndarray, n_information_bits: int) -> np.ndarray:
        """Hard-decision Viterbi decode back to the information bits.

        ``coded`` is the (possibly corrupted) punctured stream as 0/1
        values; erased positions from depuncturing contribute no metric.
        """
        coded = np.asarray(coded, dtype=np.int8).ravel()
        if n_information_bits <= 0:
            raise ConfigurationError(
                f"bit count must be positive, got {n_information_bits}"
            )
        expected = self.coded_length(n_information_bits)
        if coded.size != expected:
            raise ConfigurationError(
                f"coded stream has {coded.size} bits, expected {expected}"
            )
        stream_a, stream_b = self._depuncture(coded, n_information_bits)
        n_steps = stream_a.size

        infinity = np.int64(1) << 40
        metrics = np.full(_N_STATES, infinity, dtype=np.int64)
        metrics[0] = 0  # the encoder starts in the zero state
        decisions = np.empty((n_steps, _N_STATES), dtype=np.uint8)
        survivors = np.empty((n_steps, _N_STATES), dtype=np.int64)

        for step in range(n_steps):
            received_a = stream_a[step]
            received_b = stream_b[step]
            # Branch costs per (state, input): Hamming distance against
            # the received pair, skipping erasures.
            cost = np.zeros((_N_STATES, 2), dtype=np.int64)
            if received_a != _ERASURE:
                cost += _OUT_A != received_a
            if received_b != _ERASURE:
                cost += _OUT_B != received_b
            candidate = metrics[:, None] + cost  # (state, input)
            new_metrics = np.full(_N_STATES, infinity, dtype=np.int64)
            decision = np.zeros(_N_STATES, dtype=np.uint8)
            survivor = np.zeros(_N_STATES, dtype=np.int64)
            for bit in (0, 1):
                targets = _NEXT_STATE[:, bit]
                values = candidate[:, bit]
                # For each target state keep the cheapest incoming path.
                order = np.argsort(values, kind="stable")
                sorted_targets = targets[order]
                first = np.full(_N_STATES, -1, dtype=np.int64)
                # First occurrence of each target in cost order is the
                # cheapest incoming path for this input bit.
                unique_targets, first_positions = np.unique(
                    sorted_targets, return_index=True
                )
                first[unique_targets] = order[first_positions]
                valid = first >= 0
                better = np.where(
                    valid, values[first] < new_metrics, False
                )
                new_metrics = np.where(better, values[first], new_metrics)
                decision = np.where(better, bit, decision).astype(np.uint8)
                survivor = np.where(better, first, survivor)
            metrics = new_metrics
            decisions[step] = decision
            survivors[step] = survivor

        # Zero-tail termination: the path ends in state 0.
        state = 0
        decoded = np.empty(n_steps, dtype=np.uint8)
        for step in range(n_steps - 1, -1, -1):
            decoded[step] = decisions[step, state]
            state = survivors[step, state]
        return decoded[:n_information_bits]
