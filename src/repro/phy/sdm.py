"""2x2 spatial division multiplexing (SDM) with a zero-forcing receiver.

The second 802.11n MIMO mode (Section 2): two independent streams on
the same time-frequency resource, separated at the receiver by channel
inversion. Complements :mod:`repro.phy.stbc`; together they ground the
analysis-level mode model of :mod:`repro.phy.mimo` — SDM doubles the
rate but a poorly conditioned channel amplifies noise, which is why the
auto-rate only selects it on strong links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import linear_to_db

__all__ = ["SdmChannel", "sdm_encode", "sdm_decode"]


def sdm_encode(symbols: np.ndarray) -> np.ndarray:
    """Split a symbol stream into two parallel spatial streams.

    Even-indexed symbols ride antenna 0, odd-indexed antenna 1 — each
    antenna at half the total power, like the Alamouti encoder.
    """
    symbols = np.asarray(symbols, dtype=complex).ravel()
    if symbols.size % 2:
        raise ConfigurationError(
            f"SDM carries symbol pairs; got odd count {symbols.size}"
        )
    streams = np.vstack([symbols[0::2], symbols[1::2]])
    return streams / np.sqrt(2.0)


@dataclass
class SdmChannel:
    """A 2x2 flat MIMO channel ``h[rx, tx]`` for spatial multiplexing."""

    h: np.ndarray

    def __post_init__(self) -> None:
        self.h = np.asarray(self.h, dtype=complex)
        if self.h.shape != (2, 2):
            raise ConfigurationError(f"expected a 2x2 channel, got {self.h.shape}")

    def transmit(self, streams: np.ndarray) -> np.ndarray:
        """Mix the two transmitted streams through the channel."""
        streams = np.asarray(streams, dtype=complex)
        if streams.ndim != 2 or streams.shape[0] != 2:
            raise ConfigurationError(
                f"expected streams of shape (2, n), got {streams.shape}"
            )
        return self.h @ streams

    @property
    def condition_number(self) -> float:
        """cond(H): how much stream separation amplifies noise."""
        return float(np.linalg.cond(self.h))

    def zero_forcing_matrix(self) -> np.ndarray:
        """The ZF equaliser H^-1 (raises if H is singular)."""
        if abs(np.linalg.det(self.h)) < 1e-12:
            raise ConfigurationError("channel matrix is singular; ZF undefined")
        return np.linalg.inv(self.h)

    def noise_enhancement_db(self) -> float:
        """Post-ZF noise amplification of the worse stream, in dB.

        The ZF output noise on stream k scales with the squared norm of
        row k of H^-1; a well-conditioned channel stays near 0 dB, a
        near-singular one blows up — the SDM penalty the MCS selector's
        analysis model charges.
        """
        inverse = self.zero_forcing_matrix()
        row_gains = np.sum(np.abs(inverse) ** 2, axis=1)
        return float(linear_to_db(float(np.max(row_gains))))


def sdm_decode(received: np.ndarray, channel: SdmChannel) -> np.ndarray:
    """Zero-forcing separation back to the interleaved symbol stream."""
    received = np.asarray(received, dtype=complex)
    if received.ndim != 2 or received.shape[0] != 2:
        raise ConfigurationError(
            f"expected received shape (2, n), got {received.shape}"
        )
    separated = channel.zero_forcing_matrix() @ received
    symbols = np.empty(2 * received.shape[1], dtype=complex)
    symbols[0::2] = separated[0]
    symbols[1::2] = separated[1]
    # Undo the transmit power split.
    return symbols * np.sqrt(2.0)
