"""Coded packet harness: FEC end to end over the OFDM chain.

The BERMAC experiments of Section 3.1 are deliberately *uncoded*; a
commercial 802.11n link adds the K=7 convolutional code, which is why
"a small increase in the raw uncoded BER might result in no change in
the PER on a commercial coded system" (Section 3.2). This harness runs
packets through the real codec (:mod:`repro.phy.convolutional`), the
modulator, the channel and the Viterbi decoder — the measured coded PER
validates the analytical union-bound estimator ACORN relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import make_rng
from ..errors import ConfigurationError
from ..phy.channelmodel import awgn
from ..phy.convolutional import ConvolutionalCodec
from ..phy.modulation import Modulation, QPSK
from ..phy.ofdm import OfdmParams
from .bermac import BerMeasurement, PacketTrialResult, time_snr_offset_db
from .receiver import OfdmReceiver
from .waveform import OfdmTransmitter

__all__ = ["CodedBerHarness"]


@dataclass
class CodedBerHarness:
    """Packet BER/PER measurement with convolutional coding.

    Parameters
    ----------
    params:
        OFDM numerology under test.
    modulation:
        Data constellation.
    code_rate:
        Convolutional code rate (1/2, 2/3, 3/4, 5/6).
    """

    params: OfdmParams
    modulation: Modulation = QPSK
    code_rate: float = 1 / 2

    def __post_init__(self) -> None:
        self._codec = ConvolutionalCodec(self.code_rate)

    def _frame_geometry(self, packet_bytes: int) -> "tuple[int, int, int]":
        """(info_bits, coded_bits, n_ofdm_symbols) for one packet."""
        info_bits = 8 * packet_bytes
        coded_bits = self._codec.coded_length(info_bits)
        bits_per_symbol = self.params.n_data * self.modulation.bits_per_symbol
        n_symbols = max(1, math.ceil(coded_bits / bits_per_symbol))
        return info_bits, coded_bits, n_symbols

    def run_packet(
        self,
        subcarrier_snr_db: float,
        packet_bytes: int,
        rng: np.random.Generator,
    ) -> PacketTrialResult:
        """Encode, transmit, decode one packet; count information errors."""
        if packet_bytes <= 0:
            raise ConfigurationError(
                f"packet size must be positive, got {packet_bytes}"
            )
        info_bits, coded_bits, n_symbols = self._frame_geometry(packet_bytes)
        payload = rng.integers(0, 2, size=info_bits, dtype=np.uint8)
        coded = self._codec.encode(payload)
        bits_per_frame = (
            n_symbols * self.params.n_data * self.modulation.bits_per_symbol
        )
        padded = np.zeros(bits_per_frame, dtype=np.uint8)
        padded[: coded.size] = coded

        transmitter = OfdmTransmitter(
            params=self.params, modulation=self.modulation
        )
        frame = transmitter.build_frame(n_symbols, bits=padded)
        noisy = awgn(
            frame.samples,
            subcarrier_snr_db + time_snr_offset_db(self.params),
            rng=rng,
        )
        receiver = OfdmReceiver(self.params, self.modulation)
        result = receiver.demodulate(
            noisy, frame.n_symbols, payload_start=frame.preamble_length
        )
        received_coded = result.bits[: coded.size]
        decoded = self._codec.decode(received_coded, info_bits)
        errors = int(np.count_nonzero(decoded != payload))
        return PacketTrialResult(n_bits=info_bits, bit_errors=errors)

    def measure_at_subcarrier_snr(
        self,
        snr_db: float,
        n_packets: int = 30,
        packet_bytes: int = 200,
        rng: "np.random.Generator | int | None" = None,
    ) -> BerMeasurement:
        """Coded BER/PER at one per-subcarrier SNR operating point."""
        if n_packets <= 0:
            raise ConfigurationError(f"n_packets must be positive, got {n_packets}")
        rng = make_rng(rng)
        measurement = BerMeasurement(snr_db=snr_db)
        for _ in range(n_packets):
            measurement.record(self.run_packet(snr_db, packet_bytes, rng))
        return measurement
