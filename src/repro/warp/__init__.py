"""WARP/WarpLab testbed substrate: a sample-level OFDM baseband simulator.

The paper's Section 3.1 measurements ran on WARP FPGA boards: a random
bitstream is DQPSK/QPSK modulated, IFFT'd (64-point for 20 MHz, 128-point
for 40 MHz), a cyclic prefix is added, a Barker sequence is prepended for
symbol detection, and frames are sent over the air with 2x2 Alamouti
STBC. We reproduce that chain in numpy so that the Fig 1-4 experiments
can run without the hardware.
"""

from .waveform import OfdmFrame, OfdmTransmitter
from .receiver import OfdmReceiver, detect_preamble
from .bermac import BerMacHarness, BerMeasurement, PacketTrialResult

__all__ = [
    "OfdmFrame",
    "OfdmTransmitter",
    "OfdmReceiver",
    "detect_preamble",
    "BerMacHarness",
    "BerMeasurement",
    "PacketTrialResult",
]
