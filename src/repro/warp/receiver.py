"""OFDM receive chain: preamble detection, CP removal, FFT, demapping.

Mirror image of :mod:`repro.warp.waveform`: "at the receiver, the
preamble sequence is detected and stripped; the cyclic prefix is removed
and the remaining samples are fed into a FFT module; after demodulating
the samples, the receiver obtains the bitstream."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..phy.channelmodel import FadingChannel
from ..phy.modulation import Modulation, QPSK
from ..phy.ofdm import OfdmParams
from .waveform import BARKER_13, OfdmFrame, preamble_sequence

__all__ = ["detect_preamble", "OfdmReceiver", "DemodulationResult"]


def detect_preamble(samples: np.ndarray, threshold: float = 0.5) -> Optional[int]:
    """Locate the end of the Barker preamble by cross-correlation.

    Returns the index of the first payload sample, or ``None`` when no
    correlation peak clears ``threshold`` (normalised to the ideal peak).
    """
    samples = np.asarray(samples, dtype=complex)
    reference = preamble_sequence()
    if samples.size < reference.size:
        return None
    correlation = np.abs(
        np.correlate(samples, reference, mode="valid")
    )
    ideal_peak = float(np.sum(np.abs(reference) ** 2))
    # Normalise by the local signal energy so the threshold is
    # amplitude-independent.
    peak_index = int(np.argmax(correlation))
    window = samples[peak_index : peak_index + reference.size]
    local_energy = float(np.sum(np.abs(window) ** 2))
    if local_energy <= 0:
        return None
    normalised = correlation[peak_index] / np.sqrt(ideal_peak * local_energy)
    if normalised < threshold:
        return None
    return peak_index + reference.size


@dataclass
class DemodulationResult:
    """Outcome of demodulating one frame."""

    bits: np.ndarray
    symbols: np.ndarray  # (n_symbols, n_data) post-equalisation grid
    detected: bool

    def bit_errors(self, reference_bits: np.ndarray) -> int:
        """Count bit errors against the transmitted payload."""
        reference_bits = np.asarray(reference_bits, dtype=np.uint8)
        if reference_bits.size != self.bits.size:
            raise ConfigurationError(
                f"bit count mismatch: {reference_bits.size} vs {self.bits.size}"
            )
        return int(np.count_nonzero(self.bits != reference_bits))


@dataclass
class OfdmReceiver:
    """Demodulates frames produced by :class:`~repro.warp.waveform.OfdmTransmitter`.

    Parameters
    ----------
    params, modulation, differential:
        Must match the transmitter configuration.
    fading:
        Optional known per-data-subcarrier fading realisation to
        zero-forcing equalise (coherent mode only — differential
        reception cancels slow fading inherently).
    """

    params: OfdmParams
    modulation: Modulation = QPSK
    differential: bool = False
    fading: Optional[FadingChannel] = None

    def __post_init__(self) -> None:
        if self.fading is not None and self.fading.n_subcarriers != self.params.n_data:
            raise ConfigurationError(
                f"fading has {self.fading.n_subcarriers} gains but the "
                f"numerology has {self.params.n_data} data subcarriers"
            )

    # ------------------------------------------------------------------
    def _payload_to_grid(
        self, payload: np.ndarray, n_ofdm_symbols: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Strip CPs, FFT, and split data and pilot subcarriers."""
        n_fft = self.params.fft_size
        cp = n_fft // 4
        symbol_length = n_fft + cp
        needed = n_ofdm_symbols * symbol_length
        if payload.size < needed:
            raise ConfigurationError(
                f"payload has {payload.size} samples, need {needed}"
            )
        blocks = payload[:needed].reshape(n_ofdm_symbols, symbol_length)
        no_cp = blocks[:, cp:]
        spectrum = np.fft.fft(no_cp, axis=1)
        data_indices = np.asarray(self.params.data_subcarriers) % n_fft
        pilot_indices = np.asarray(self.params.pilot_subcarriers) % n_fft
        return spectrum[:, data_indices], spectrum[:, pilot_indices]

    def demodulate(
        self,
        samples: np.ndarray,
        n_symbols: int,
        payload_start: Optional[int] = None,
    ) -> DemodulationResult:
        """Recover the payload bits from received frame samples.

        Parameters
        ----------
        samples:
            Received complex baseband (preamble + payload), possibly
            noisy/faded.
        n_symbols:
            Number of *data* OFDM symbols (the DQPSK reference symbol,
            when differential, is handled internally).
        payload_start:
            Known index of the first payload sample. When ``None`` the
            Barker preamble is detected; detection failure falls back to
            the nominal preamble length and is flagged via
            ``DemodulationResult.detected``.
        """
        samples = np.asarray(samples, dtype=complex)
        detected = True
        if payload_start is None:
            payload_start = detect_preamble(samples)
            if payload_start is None:
                detected = False
                payload_start = BARKER_13.size * 4
        payload = samples[payload_start:]
        n_ofdm_symbols = n_symbols + (1 if self.differential else 0)
        grid, pilots = self._payload_to_grid(payload, n_ofdm_symbols)
        if self.differential:
            # Phase difference between consecutive symbols per subcarrier;
            # slow per-subcarrier fading (and any amplitude scale) cancels.
            reference = grid[:-1]
            safe = np.where(np.abs(reference) < 1e-12, 1e-12, reference)
            grid = grid[1:] / safe
        else:
            # Pilot-aided amplitude/phase reference: the transmitter sends
            # unit BPSK tones on the pilots, so their complex mean is the
            # common scale factor (transmit power scaling, flat gain).
            scale = np.mean(pilots) if pilots.size else 1.0 + 0.0j
            if abs(scale) < 1e-12:
                scale = 1.0 + 0.0j
            grid = grid / scale
            if self.fading is not None:
                grid = self.fading.equalize(grid)
        bits = self.modulation.demap_symbols(grid.ravel())
        return DemodulationResult(bits=bits, symbols=grid, detected=detected)

    def demodulate_frame(
        self, frame: OfdmFrame, received: Optional[np.ndarray] = None
    ) -> DemodulationResult:
        """Convenience wrapper taking the transmit-side frame metadata."""
        samples = frame.samples if received is None else received
        return self.demodulate(
            samples, frame.n_symbols, payload_start=frame.preamble_length
        )
