"""BERMAC-style packet BER/PER measurement harness.

The paper's setup: a Java application loads known 1500-byte payloads into
the WARP boards, 9000 back-to-back packets are transmitted, and the
receiving board counts bit errors against the known payload. This module
does the same against the simulated OFDM chain: one frame per packet,
AWGN (optionally per-subcarrier fading), and exact bit-error accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import DEFAULT_NOISE_FIGURE_DB, DEFAULT_PACKET_SIZE_BYTES, make_rng
from ..errors import ConfigurationError
from ..phy.channelmodel import FadingChannel, awgn, rayleigh_subcarrier_gains
from ..phy.modulation import Modulation, QPSK
from ..phy.noise import snr_per_subcarrier_db
from ..phy.ofdm import OfdmParams
from .receiver import OfdmReceiver
from .waveform import OfdmTransmitter

__all__ = [
    "PacketTrialResult",
    "BerMeasurement",
    "BerMacHarness",
    "time_snr_offset_db",
]


@dataclass
class PacketTrialResult:
    """Bit accounting for a single transmitted packet."""

    n_bits: int
    bit_errors: int

    @property
    def in_error(self) -> bool:
        """A packet is lost if any payload bit is wrong (no FEC here)."""
        return self.bit_errors > 0


@dataclass
class BerMeasurement:
    """Aggregated BER/PER statistics for one operating point."""

    snr_db: float
    n_bits: int = 0
    bit_errors: int = 0
    n_packets: int = 0
    packet_errors: int = 0

    def record(self, trial: PacketTrialResult) -> None:
        """Fold one packet trial into the aggregate."""
        self.n_bits += trial.n_bits
        self.bit_errors += trial.bit_errors
        self.n_packets += 1
        if trial.in_error:
            self.packet_errors += 1

    @property
    def ber(self) -> float:
        """Measured bit error ratio."""
        if self.n_bits == 0:
            raise ConfigurationError("no bits recorded")
        return self.bit_errors / self.n_bits

    @property
    def per(self) -> float:
        """Measured packet error ratio."""
        if self.n_packets == 0:
            raise ConfigurationError("no packets recorded")
        return self.packet_errors / self.n_packets


def time_snr_offset_db(params: OfdmParams) -> float:
    """Offset between per-sample (time) SNR and per-subcarrier Es/N0.

    Only ``n_used`` of ``fft_size`` bins carry signal while noise is
    white across all of them, so the time-domain SNR sits
    ``10*log10(n_used/fft_size)`` below the per-subcarrier SNR.
    """
    # reprolint: ok RL002 mirrors the WARP DSP reference's inline
    # subcarrier duty-cycle arithmetic, kept literal for comparability
    return 10.0 * math.log10(params.n_used / params.fft_size)


@dataclass
class BerMacHarness:
    """Runs packet BER experiments over the simulated OFDM chain.

    Parameters
    ----------
    params:
        OFDM numerology under test (HT20 or HT40).
    modulation:
        Data constellation (the paper sweeps QPSK here).
    differential:
        Use DQPSK-style differential encoding along time.
    fading_seed:
        When set, a fixed per-subcarrier Rayleigh fade is drawn once and
        applied to every packet (a static multipath snapshot); ``None``
        keeps the channel AWGN-only as in the paper's theory comparison.
    """

    params: OfdmParams
    modulation: Modulation = QPSK
    differential: bool = False
    fading_seed: Optional[int] = None
    _fading: Optional[FadingChannel] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.fading_seed is not None:
            gains = rayleigh_subcarrier_gains(
                self.params.n_data, rng=self.fading_seed
            )
            self._fading = FadingChannel(gains)

    # ------------------------------------------------------------------
    def _symbols_per_packet(self, packet_bytes: int) -> int:
        bits_per_symbol = self.params.n_data * self.modulation.bits_per_symbol
        return max(1, math.ceil(8 * packet_bytes / bits_per_symbol))

    def run_packet(
        self,
        subcarrier_snr_db: float,
        packet_bytes: int,
        rng: np.random.Generator,
    ) -> PacketTrialResult:
        """Transmit one packet at a target per-subcarrier Es/N0."""
        transmitter = OfdmTransmitter(
            params=self.params,
            modulation=self.modulation,
            differential=self.differential,
        )
        n_symbols = self._symbols_per_packet(packet_bytes)
        frame = transmitter.build_frame(n_symbols, rng=rng)
        samples = frame.samples
        if self._fading is not None:
            # Apply the static fade in the frequency domain by re-building
            # the payload; cheaper and exact for a static channel.
            grid = transmitter.modulate_bits(frame.bits)
            if self.differential:
                grid = transmitter._differential_encode(grid)
            faded = self._fading.apply(grid)
            payload = transmitter.grid_to_time(faded)
            power = float(np.mean(np.abs(payload) ** 2))
            payload *= np.sqrt(transmitter.tx_power / power)
            samples = np.concatenate(
                [frame.samples[: frame.preamble_length], payload]
            )
        time_snr = subcarrier_snr_db + time_snr_offset_db(self.params)
        noisy = awgn(samples, time_snr, rng=rng)
        receiver = OfdmReceiver(
            params=self.params,
            modulation=self.modulation,
            differential=self.differential,
            fading=None if self.differential else self._fading,
        )
        result = receiver.demodulate(
            noisy, frame.n_symbols, payload_start=frame.preamble_length
        )
        # Only the first 8*packet_bytes bits are payload; the rest pad the
        # final OFDM symbol.
        payload_bits = 8 * packet_bytes
        errors = int(
            np.count_nonzero(
                result.bits[:payload_bits] != frame.bits[:payload_bits]
            )
        )
        return PacketTrialResult(n_bits=payload_bits, bit_errors=errors)

    def measure_at_subcarrier_snr(
        self,
        snr_db: float,
        n_packets: int = 100,
        packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
        rng: "np.random.Generator | int | None" = None,
    ) -> BerMeasurement:
        """BER/PER at a fixed per-subcarrier SNR (Fig 3a / 4a points)."""
        if n_packets <= 0:
            raise ConfigurationError(f"n_packets must be positive, got {n_packets}")
        rng = make_rng(rng)
        measurement = BerMeasurement(snr_db=snr_db)
        for _ in range(n_packets):
            measurement.record(self.run_packet(snr_db, packet_bytes, rng))
        return measurement

    def measure_at_tx_power(
        self,
        tx_power_dbm: float,
        path_loss_db: float,
        n_packets: int = 100,
        packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
        noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
        rng: "np.random.Generator | int | None" = None,
    ) -> BerMeasurement:
        """BER/PER at a fixed transmit power (Fig 3b / 4b points).

        The per-subcarrier SNR follows from the link budget — and is
        ~3 dB lower for the 40 MHz numerology at equal power, which is
        the entire point of the experiment.
        """
        snr = snr_per_subcarrier_db(
            tx_power_dbm, path_loss_db, self.params, noise_figure_db
        )
        return self.measure_at_subcarrier_snr(
            snr, n_packets=n_packets, packet_bytes=packet_bytes, rng=rng
        )

    def sweep_subcarrier_snr(
        self,
        snr_values_db: "List[float] | np.ndarray",
        n_packets: int = 100,
        packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
        rng: "np.random.Generator | int | None" = None,
    ) -> List[BerMeasurement]:
        """Measure a list of SNR operating points with one shared RNG."""
        rng = make_rng(rng)
        return [
            self.measure_at_subcarrier_snr(
                float(snr), n_packets=n_packets, packet_bytes=packet_bytes, rng=rng
            )
            for snr in snr_values_db
        ]
