"""OFDM transmit chain mirroring the paper's WarpLab implementation.

Pipeline (Section 3.1): random bitstream -> (D)QPSK mapping -> subcarrier
mapping -> IFFT (64/128-point) -> cyclic prefix -> Barker preamble.
Channel bonding is implemented "by appropriately changing the subcarrier
mappings, and using a 128-point FFT" — exactly what switching
``OfdmParams`` does here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import make_rng
from ..errors import ConfigurationError
from ..phy.modulation import Modulation, QPSK
from ..phy.ofdm import OfdmParams

__all__ = ["BARKER_13", "OfdmFrame", "OfdmTransmitter", "preamble_sequence"]

# Barker-13 code: ideal autocorrelation sidelobes, used for frame timing.
BARKER_13 = np.array(
    [1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1], dtype=float
)

# Number of Barker repetitions forming the preamble.
_PREAMBLE_REPEATS = 4


def preamble_sequence(amplitude: float = 1.0) -> np.ndarray:
    """The transmitted preamble: repeated Barker-13 BPSK chips."""
    return amplitude * np.tile(BARKER_13, _PREAMBLE_REPEATS).astype(complex)


@dataclass
class OfdmFrame:
    """One modulated OFDM frame plus the metadata needed to decode it.

    Attributes
    ----------
    samples:
        Complex baseband samples (preamble + CP'd OFDM symbols).
    bits:
        The payload bits that were modulated (ground truth for BER).
    params:
        The OFDM numerology used.
    modulation:
        The constellation used on the data subcarriers.
    differential:
        Whether the payload was differentially encoded along time.
    n_symbols:
        Number of OFDM symbols in the payload (excluding the DQPSK
        reference symbol when ``differential``).
    """

    samples: np.ndarray
    bits: np.ndarray
    params: OfdmParams
    modulation: Modulation
    differential: bool
    n_symbols: int
    preamble_length: int

    @property
    def cp_length(self) -> int:
        """Cyclic-prefix length: a quarter FFT, the 802.11 long GI."""
        return self.params.fft_size // 4

    @property
    def symbol_length(self) -> int:
        """Time samples per OFDM symbol including the cyclic prefix."""
        return self.params.fft_size + self.cp_length


@dataclass
class OfdmTransmitter:
    """Builds OFDM frames for a given numerology and constellation.

    Parameters
    ----------
    params:
        OFDM numerology (:data:`repro.phy.ofdm.OFDM_20MHZ` or
        :data:`~repro.phy.ofdm.OFDM_40MHZ`).
    modulation:
        Data-subcarrier constellation; the paper's WARP experiments use
        (D)QPSK.
    differential:
        Differentially encode along time per subcarrier (DQPSK-style);
        the first OFDM symbol then carries the phase reference.
    tx_power:
        Total mean transmit power of the OFDM portion in linear units.
        Held constant across numerologies to reproduce the fixed-power
        constraint of 802.11n (the per-subcarrier energy then drops by
        ~3 dB for the 40 MHz configuration).
    """

    params: OfdmParams
    modulation: Modulation = QPSK
    differential: bool = False
    tx_power: float = 1.0

    def __post_init__(self) -> None:
        if self.tx_power <= 0:
            raise ConfigurationError(f"tx_power must be positive, got {self.tx_power}")

    # ------------------------------------------------------------------
    def modulate_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map payload bits onto a (n_symbols, n_data) symbol grid."""
        bits = np.asarray(bits, dtype=np.uint8)
        bits_per_ofdm_symbol = self.params.n_data * self.modulation.bits_per_symbol
        if bits.size == 0 or bits.size % bits_per_ofdm_symbol:
            raise ConfigurationError(
                f"bit count {bits.size} must be a positive multiple of "
                f"{bits_per_ofdm_symbol}"
            )
        symbols = self.modulation.map_bits(bits)
        return symbols.reshape(-1, self.params.n_data)

    def _differential_encode(self, grid: np.ndarray) -> np.ndarray:
        """Prepend a reference symbol and accumulate phases along time."""
        reference = np.ones((1, grid.shape[1]), dtype=complex)
        stacked = np.vstack([reference, grid])
        return np.cumprod(stacked, axis=0)

    def grid_to_time(self, grid: np.ndarray) -> np.ndarray:
        """IFFT each row of a symbol grid and add the cyclic prefix."""
        n_fft = self.params.fft_size
        cp = n_fft // 4
        spectrum = np.zeros((grid.shape[0], n_fft), dtype=complex)
        indices = np.asarray(self.params.data_subcarriers) % n_fft
        spectrum[:, indices] = grid
        # Pilots carry a constant BPSK tone at data power.
        pilot_indices = np.asarray(self.params.pilot_subcarriers) % n_fft
        spectrum[:, pilot_indices] = 1.0
        time = np.fft.ifft(spectrum, axis=1)
        with_cp = np.hstack([time[:, -cp:], time])
        return with_cp.ravel()

    def build_frame(
        self,
        n_symbols: int,
        rng: "np.random.Generator | int | None" = None,
        bits: Optional[np.ndarray] = None,
    ) -> OfdmFrame:
        """Create a frame of ``n_symbols`` payload OFDM symbols.

        ``bits`` may supply an explicit payload; otherwise random bits
        are drawn from ``rng`` (the paper uses a random bitstream).
        """
        if n_symbols <= 0:
            raise ConfigurationError(f"n_symbols must be positive, got {n_symbols}")
        bits_needed = (
            n_symbols * self.params.n_data * self.modulation.bits_per_symbol
        )
        if bits is None:
            rng = make_rng(rng)
            bits = rng.integers(0, 2, size=bits_needed, dtype=np.uint8)
        else:
            bits = np.asarray(bits, dtype=np.uint8)
            if bits.size != bits_needed:
                raise ConfigurationError(
                    f"expected {bits_needed} bits for {n_symbols} symbols, "
                    f"got {bits.size}"
                )
        grid = self.modulate_bits(bits)
        if self.differential:
            grid = self._differential_encode(grid)
        payload = self.grid_to_time(grid)
        # Scale the OFDM portion to the configured total transmit power.
        current_power = float(np.mean(np.abs(payload) ** 2))
        payload = payload * np.sqrt(self.tx_power / current_power)
        preamble = preamble_sequence(np.sqrt(self.tx_power))
        samples = np.concatenate([preamble, payload])
        return OfdmFrame(
            samples=samples,
            bits=bits,
            params=self.params,
            modulation=self.modulation,
            differential=self.differential,
            n_symbols=n_symbols,
            preamble_length=preamble.size,
        )
