"""Network throughput evaluation: the objective Y(F) = Σ X_i.

Combines the substrate layers: each AP's clients get their
goodput-optimal MCS on the AP's channel width (link layer), per-client
delays and the performance anomaly give the cell throughput (MAC layer),
and the channel-conditioned contention share M = 1/(|con|+1) accounts
for co-channel neighbours (interference graph). This evaluator is used
both as the "ground truth" of the simulated testbed and as ACORN's own
throughput estimator — which is faithful to the paper, where the
estimation pipeline (SNR → BER → PER → X = M/ATD) is exactly the model
the system believes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import networkx as nx

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import AllocationError
from ..link.adaptation import RateController
from ..mac.airtime import client_delay_s, medium_share
from ..mac.dcf import DEFAULT_TIMINGS, MacTimings
from ..mcs.selection import RateDecision
from .channels import Channel
from .interference import contenders
from .topology import Network

__all__ = [
    "UdpTraffic",
    "NetworkReport",
    "ThroughputModel",
    "WeightedThroughputModel",
]


class UdpTraffic:
    """Saturated UDP: every delivered packet is goodput."""

    name = "udp"

    def goodput_factor(self, per: float) -> float:
        """No loss sensitivity beyond the MAC retransmissions."""
        return 1.0


@dataclass(frozen=True)
class NetworkReport:
    """Evaluated throughput of one network configuration."""

    per_ap_mbps: Mapping[str, float]
    per_client_mbps: Mapping[str, float]
    assignment: Mapping[str, Channel]
    associations: Mapping[str, str]

    @property
    def total_mbps(self) -> float:
        """Aggregate network throughput Y (the paper's objective, Eq. 5)."""
        return sum(self.per_ap_mbps.values())


@dataclass
class ThroughputModel:
    """Evaluates Y(F) for a network under a channel assignment.

    Parameters
    ----------
    controller:
        Rate/MCS selection used for every link.
    timings:
        MAC overhead model.
    packet_bytes:
        Downlink packet size.
    traffic:
        Object with a ``goodput_factor(per)`` method; defaults to
        saturated UDP. :class:`repro.sim.traffic.TcpTraffic` models the
        paper's TCP experiments.
    """

    controller: RateController = field(default_factory=RateController)
    timings: MacTimings = DEFAULT_TIMINGS
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    traffic: UdpTraffic = field(default_factory=UdpTraffic)

    def __post_init__(self) -> None:
        self._decision_cache: Dict[Tuple[float, str], RateDecision] = {}

    # ------------------------------------------------------------------
    def decision_from_snr(self, snr: float, params) -> RateDecision:
        """Cached rate decision from a per-subcarrier SNR and numerology.

        This is the exact cache used by :meth:`link_decision`; the
        compiled-state rate tables (:mod:`repro.net.state`) call it
        directly with SNRs read from the frozen matrices so both paths
        produce identical :class:`RateDecision` objects.
        """
        key = (round(snr, 3), params.name)
        decision = self._decision_cache.get(key)
        if decision is None:
            decision = self.controller.decide_from_snr(snr, params)
            self._decision_cache[key] = decision
        return decision

    def link_decision(
        self, network: Network, ap_id: str, client_id: str, channel: Channel
    ) -> RateDecision:
        """Cached goodput-optimal rate decision for one link and width."""
        budget = network.link_budget(ap_id, client_id)
        snr = budget.subcarrier_snr_db(channel.params)
        return self.decision_from_snr(snr, channel.params)

    def client_delay(
        self, network: Network, ap_id: str, client_id: str, channel: Channel
    ) -> float:
        """d_cl: expected airtime per delivered packet for one client."""
        decision = self.link_decision(network, ap_id, client_id, channel)
        return client_delay_s(
            decision.nominal_rate_mbps,
            decision.per,
            self.packet_bytes,
            self.timings,
        )

    # ------------------------------------------------------------------
    def contention_weight(self, own: Channel, other: Channel) -> float:
        """Airtime cost one neighbour on ``other`` imposes on ``own``.

        The base model is binary: 1.0 when the colours conflict, else
        0.0, so that ``1/(1 + Σ weights)`` reproduces the paper's
        ``M = 1/(|con|+1)``. The delta engine's structural fast path
        assumes ``medium_share_of`` equals exactly this form; subclasses
        overriding one should override the other consistently (and may
        set ``delta_structural = True`` to keep the fast path).
        """
        return 1.0 if own.conflicts_with(other) else 0.0

    def medium_share_of(
        self,
        graph: nx.Graph,
        ap_id: str,
        assignment: Mapping[str, Channel],
    ) -> float:
        """M for one AP: 1/(|con|+1) over conflicting IG neighbours.

        Subclasses may refine this — e.g. the weighted partial-overlap
        model of :class:`WeightedThroughputModel`.
        """
        n_contenders = len(contenders(graph, ap_id, assignment))
        return medium_share(n_contenders)

    # ------------------------------------------------------------------
    def ap_throughput_mbps(
        self,
        network: Network,
        graph: nx.Graph,
        ap_id: str,
        assignment: Mapping[str, Channel],
        associations: Mapping[str, str],
    ) -> Tuple[float, Dict[str, float]]:
        """Cell throughput X_a and the per-client breakdown."""
        channel = assignment.get(ap_id)
        if channel is None:
            raise AllocationError(f"AP {ap_id!r} has no channel in the assignment")
        client_ids = [
            client for client, ap in associations.items() if ap == ap_id
        ]
        if not client_ids:
            return 0.0, {}
        m_share = self.medium_share_of(graph, ap_id, assignment)
        delays = {}
        factors = {}
        for client_id in client_ids:
            decision = self.link_decision(network, ap_id, client_id, channel)
            delays[client_id] = client_delay_s(
                decision.nominal_rate_mbps,
                decision.per,
                self.packet_bytes,
                self.timings,
            )
            factors[client_id] = self.traffic.goodput_factor(decision.per)
        atd = sum(delays.values())
        if atd == float("inf"):
            return 0.0, {client: 0.0 for client in client_ids}
        packet_mbits = 8 * self.packet_bytes / 1e6
        base_packets_per_s = m_share / atd
        per_client = {
            client: base_packets_per_s * packet_mbits * factors[client]
            for client in client_ids
        }
        return sum(per_client.values()), per_client

    def evaluate(
        self,
        network: Network,
        graph: nx.Graph,
        assignment: Optional[Mapping[str, Channel]] = None,
        associations: Optional[Mapping[str, str]] = None,
    ) -> NetworkReport:
        """Full-network report; overrides allow what-if evaluation."""
        merged_assignment: Dict[str, Channel] = dict(network.channel_assignment)
        if assignment:
            merged_assignment.update(assignment)
        merged_associations: Dict[str, str] = dict(network.associations)
        if associations is not None:
            merged_associations = dict(associations)
        per_ap: Dict[str, float] = {}
        per_client: Dict[str, float] = {}
        for ap_id in network.ap_ids:
            if ap_id not in merged_assignment:
                # An AP that has not been configured yet carries no traffic.
                per_ap[ap_id] = 0.0
                continue
            cell, clients = self.ap_throughput_mbps(
                network, graph, ap_id, merged_assignment, merged_associations
            )
            per_ap[ap_id] = cell
            per_client.update(clients)
        return NetworkReport(
            per_ap_mbps=per_ap,
            per_client_mbps=per_client,
            assignment=dict(merged_assignment),
            associations=merged_associations,
        )

    def aggregate_mbps(
        self,
        network: Network,
        graph: nx.Graph,
        assignment: Optional[Mapping[str, Channel]] = None,
        associations: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Shortcut for the scalar objective Y."""
        return self.evaluate(network, graph, assignment, associations).total_mbps

    # ------------------------------------------------------------------
    def isolated_ap_throughput_mbps(
        self,
        network: Network,
        ap_id: str,
        channel: Channel,
        associations: Optional[Mapping[str, str]] = None,
    ) -> float:
        """X_isol: the AP's throughput with no contention (M = 1)."""
        merged = dict(network.associations if associations is None else associations)
        client_ids = [c for c, ap in merged.items() if ap == ap_id]
        if not client_ids:
            return 0.0
        delays = []
        factors = []
        for client_id in client_ids:
            decision = self.link_decision(network, ap_id, client_id, channel)
            delays.append(
                client_delay_s(
                    decision.nominal_rate_mbps,
                    decision.per,
                    self.packet_bytes,
                    self.timings,
                )
            )
            factors.append(self.traffic.goodput_factor(decision.per))
        atd = sum(delays)
        if atd == float("inf"):
            return 0.0
        packet_mbits = 8 * self.packet_bytes / 1e6
        return sum(packet_mbits / atd * factor for factor in factors)

    def best_isolated_throughput_mbps(
        self,
        network: Network,
        ap_id: str,
        plan_channels: Tuple[Channel, ...],
        associations: Optional[Mapping[str, str]] = None,
    ) -> float:
        """max(X_isol-20, X_isol-40): one term of the Y* upper bound."""
        widths_seen = set()
        best = 0.0
        for channel in plan_channels:
            if channel.width_mhz in widths_seen:
                continue  # same-width channels are equivalent (Fig 8)
            widths_seen.add(channel.width_mhz)
            best = max(
                best,
                self.isolated_ap_throughput_mbps(
                    network, ap_id, channel, associations
                ),
            )
        return best


@dataclass
class WeightedThroughputModel(ThroughputModel):
    """Throughput under partially-overlapped-channel contention.

    The paper's binary colour conflicts are exact on the orthogonal
    5 GHz plan it evaluates; on plans with partial spectral overlap
    (the 2.4 GHz band of its reference [7]) a neighbour costs airtime
    in proportion to how much of the AP's band it covers:
    ``M = 1/(1 + Σ overlap)``. Reduces to the base model whenever all
    overlaps are 0 or 1.
    """

    def contention_weight(self, own: Channel, other: Channel) -> float:
        """Fractional spectral overlap instead of the binary conflict."""
        from .overlap import spectral_overlap_fraction

        return spectral_overlap_fraction(own, other)

    def medium_share_of(
        self,
        graph: nx.Graph,
        ap_id: str,
        assignment: Mapping[str, Channel],
    ) -> float:
        """M = 1/(1 + sum of neighbour overlap fractions)."""
        from .overlap import weighted_contention_share

        own = assignment.get(ap_id)
        if own is None:
            raise AllocationError(f"AP {ap_id!r} has no channel assigned")
        neighbour_channels = [
            assignment[neighbour]
            for neighbour in graph.neighbors(ap_id)
            if neighbour in assignment
        ]
        return weighted_contention_share(own, neighbour_channels)
