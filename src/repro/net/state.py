"""Compiled array-backed network state: the index fast path.

A built :class:`~repro.net.topology.Network` is a web of string-keyed
dicts — ideal for construction and inspection, but every hot path
(delta rescoring, greedy sweeps, fleet workers) pays dict hashing and
object traversal per candidate. :class:`CompiledNetwork` freezes a
network into contiguous arrays with stable integer ids:

* ``ap_ids`` / ``client_ids`` record the id↔name mapping — integer id
  ``i`` *is* position ``i`` in those tuples (insertion order, the same
  order every dict walk in the legacy engine uses);
* dense AP×client SNR matrices (20 and 40 MHz, computed through the
  exact :meth:`~repro.net.topology.Network.link_budget` pipeline);
* CSR-style interference adjacency in ``graph.neighbors`` order, so
  sequential load sums replay the dict engine's addition order;
* precomputed channel-conflict/overlap tables for the palette and
  per-model MCS rate tables (:class:`RateTables`).

**Contract.** ``compile()`` snapshots; later mutations of the source
``Network`` are *not* reflected — recompile after topology, link,
association or conflict changes (the controller invalidates its cached
compile together with the interference graph). ``thaw()`` reconstructs
an equivalent mutable ``Network`` from the frozen state, and
``fingerprint()`` digests everything that affects evaluation so a
payload can be verified end-to-end.

:class:`CompiledEvaluator` is the engine riding on this state: an
index-based mirror of the :class:`~repro.net.evaluator.DeltaEvaluator`
structural tier that replays its floating-point operation order exactly
— same sequential sums, same memoised pure-function cells — so
committed aggregates and every trial value are bit-identical to the
legacy dict engine (enforced by the equivalence test suite). It applies
only to models that :func:`supports_compiled`; anything exotic stays on
the legacy engines.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import AllocationError, TopologyError
from ..graph.components import ComponentDecomposition
from ..mac.airtime import client_delay_s
from ..phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from .channels import Channel, ChannelPlan
from .evaluator import EngineStats
from .interference import (
    adjacency_arrays,
    ap_hearing_columns,
    ap_hearing_square,
    build_interference_graph,
    graph_from_hearing,
)
from .overlap import spectral_overlap_fraction
from .throughput import ThroughputModel, WeightedThroughputModel
from .topology import Network

__all__ = [
    "CompiledEvaluator",
    "CompiledNetwork",
    "RateTables",
    "ShardView",
    "network_fingerprint",
    "supports_compiled",
]

# Width index 0 is 20 MHz, 1 is 40 MHz — everywhere in this module.
_WIDTH_PARAMS = (OFDM_20MHZ, OFDM_40MHZ)

_FINGERPRINT_VERSION = 1


def _hex(value: float) -> str:
    return float(value).hex()


def _hex_position(position) -> "Optional[List[str]]":
    if position is None:
        return None
    return [_hex(position[0]), _hex(position[1])]


def network_fingerprint(network: Network) -> str:
    """Stable digest of everything that affects evaluation results.

    Covers devices (in insertion order — it shapes summation order),
    link overrides, explicit conflicts, associations, channels and the
    simulation config. Floats are hashed via ``float.hex`` so the digest
    is exact, platform-independent and insensitive to repr formatting.
    Equal fingerprints ⇒ bit-identical evaluation on both engines.
    """
    config = network.config
    payload = {
        "version": _FINGERPRINT_VERSION,
        "config": {
            "seed": int(config.seed),
            "noise_figure_db": _hex(config.noise_figure_db),
            "max_tx_power_dbm": _hex(config.max_tx_power_dbm),
            "packet_size_bytes": int(config.packet_size_bytes),
            "path_loss": {
                "pl0_db": _hex(config.path_loss.pl0_db),
                "exponent": _hex(config.path_loss.exponent),
                "reference_m": _hex(config.path_loss.reference_m),
                "shadowing_sigma_db": _hex(config.path_loss.shadowing_sigma_db),
            },
        },
        "aps": [
            [
                ap_id,
                _hex_position(network.ap(ap_id).position),
                _hex(network.ap(ap_id).tx_power_dbm),
            ]
            for ap_id in network.ap_ids
        ],
        "clients": [
            [client_id, _hex_position(network.client(client_id).position)]
            for client_id in network.client_ids
        ],
        "links": sorted(
            [ap_id, client_id, _hex(value)]
            for (ap_id, client_id), value in network._snr_overrides.items()
        ),
        "conflicts": (
            None
            if network.explicit_conflicts is None
            else sorted(sorted(pair) for pair in network.explicit_conflicts)
        ),
        "associations": sorted(
            [client_id, ap_id]
            for client_id, ap_id in network.associations.items()
        ),
        "channels": sorted(
            [ap_id, channel.primary, channel.secondary]
            for ap_id, channel in network.channel_assignment.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def supports_compiled(model: ThroughputModel) -> bool:
    """Whether the compiled fast path reproduces ``model`` bit-for-bit.

    True for the stock binary-conflict and weighted-overlap models (and
    subclasses that only change *data* fields like packet size, traffic
    or controller). Overriding any evaluation hook — ``evaluate``,
    ``ap_throughput_mbps``, ``link_decision``, or an inconsistent
    ``medium_share_of``/``contention_weight`` pair — opts the model out;
    such models must use :class:`~repro.net.evaluator.DeltaEvaluator`.
    """
    cls = type(model)
    if cls.evaluate is not ThroughputModel.evaluate:
        return False
    if cls.ap_throughput_mbps is not ThroughputModel.ap_throughput_mbps:
        return False
    if cls.link_decision is not ThroughputModel.link_decision:
        return False
    binary = (
        cls.medium_share_of is ThroughputModel.medium_share_of
        and cls.contention_weight is ThroughputModel.contention_weight
    )
    weighted = (
        cls.medium_share_of is WeightedThroughputModel.medium_share_of
        and cls.contention_weight is WeightedThroughputModel.contention_weight
    )
    return binary or weighted


class RateTables:
    """Per-(width, AP, client) delay and goodput-factor lookup tables.

    Entry ``delay[w][a][c]`` is the exact float the dict engine derives
    via ``link_decision`` + ``client_delay_s`` for AP ``a``, client
    ``c`` on width ``w`` (0 = 20 MHz, 1 = 40 MHz); ``factor[w][a][c]``
    is the matching traffic goodput factor. Undefined links hold NaN and
    are never read (associations require a link). Built once per
    (compiled network, model) — after that no link-budget, SNR or rate
    mathematics remains on any hot path.
    """

    def __init__(self, compiled: "CompiledNetwork", model: ThroughputModel) -> None:
        """Precompute both width tables for every defined link."""
        snr_matrices = (compiled.snr20_db, compiled.snr40_db)
        nan = float("nan")
        packet_bytes = model.packet_bytes
        timings = model.timings
        goodput_factor = model.traffic.goodput_factor
        self.delay: List[List[List[float]]] = []
        self.factor: List[List[List[float]]] = []
        for width, params in enumerate(_WIDTH_PARAMS):
            snr_matrix = snr_matrices[width]
            delay_rows: List[List[float]] = []
            factor_rows: List[List[float]] = []
            for ap in range(compiled.n_aps):
                linked = compiled.has_link[ap]
                snr_row = snr_matrix[ap]
                delay_row: List[float] = []
                factor_row: List[float] = []
                for client in range(compiled.n_clients):
                    if linked[client]:
                        decision = model.decision_from_snr(
                            float(snr_row[client]), params
                        )
                        delay_row.append(
                            client_delay_s(
                                decision.nominal_rate_mbps,
                                decision.per,
                                packet_bytes,
                                timings,
                            )
                        )
                        factor_row.append(goodput_factor(decision.per))
                    else:
                        delay_row.append(nan)
                        factor_row.append(nan)
                delay_rows.append(delay_row)
                factor_rows.append(factor_row)
            self.delay.append(delay_rows)
            self.factor.append(factor_rows)


class CompiledNetwork:
    """A :class:`Network` frozen into contiguous arrays and integer ids.

    Integer AP id ``i`` is position ``i`` of :attr:`ap_ids` (insertion
    order); likewise for clients. The snapshot is immutable by
    convention: it records topology, link SNRs, adjacency, the channel
    palette, and the association/channel state at compile time. Use
    :meth:`thaw` to get back a mutable ``Network`` and
    :meth:`fingerprint` to verify integrity across process boundaries.
    """

    def __init__(
        self,
        network: Network,
        graph=None,
        plan: Optional[ChannelPlan] = None,
    ) -> None:
        """Freeze ``network`` — prefer the :meth:`compile` classmethod."""
        if graph is None:
            graph = build_interference_graph(network)
        self.config = network.config
        self.ap_ids: Tuple[str, ...] = network.ap_ids
        self.client_ids: Tuple[str, ...] = network.client_ids
        self.ap_index: Dict[str, int] = {
            ap_id: index for index, ap_id in enumerate(self.ap_ids)
        }
        self.client_index: Dict[str, int] = {
            client_id: index for index, client_id in enumerate(self.client_ids)
        }
        n_aps = len(self.ap_ids)
        n_clients = len(self.client_ids)
        self.tx_power_dbm = np.array(
            [network.ap(ap_id).tx_power_dbm for ap_id in self.ap_ids],
            dtype=np.float64,
        )
        self.ap_positions = tuple(
            network.ap(ap_id).position for ap_id in self.ap_ids
        )
        self.client_positions = tuple(
            network.client(client_id).position for client_id in self.client_ids
        )
        # Dense link matrices. -inf marks "no link" (never a valid SNR
        # and safely below any serviceability floor).
        self.has_link = np.zeros((n_aps, n_clients), dtype=bool)
        self.snr20_db = np.full((n_aps, n_clients), -np.inf, dtype=np.float64)
        self.snr40_db = np.full((n_aps, n_clients), -np.inf, dtype=np.float64)
        for ap, ap_id in enumerate(self.ap_ids):
            for client, client_id in enumerate(self.client_ids):
                if not network.has_link(ap_id, client_id):
                    continue
                budget = network.link_budget(ap_id, client_id)
                self.has_link[ap, client] = True
                self.snr20_db[ap, client] = budget.subcarrier_snr_db(OFDM_20MHZ)
                self.snr40_db[ap, client] = budget.subcarrier_snr_db(OFDM_40MHZ)
        self.snr_overrides: Tuple[Tuple[str, str, float], ...] = tuple(
            (ap_id, client_id, value)
            for (ap_id, client_id), value in network._snr_overrides.items()
        )
        self.adj_indptr, self.adj_indices, self.in_graph = adjacency_arrays(
            graph, self.ap_ids
        )
        flat = [int(j) for j in self.adj_indices]
        self.neighbor_lists: Tuple[Optional[Tuple[int, ...]], ...] = tuple(
            tuple(flat[self.adj_indptr[ap] : self.adj_indptr[ap + 1]])
            if self.in_graph[ap]
            else None
            for ap in range(n_aps)
        )
        conflicts = network.explicit_conflicts
        self.explicit_conflicts: Optional[Tuple[Tuple[str, str], ...]] = (
            None
            if conflicts is None
            else tuple(sorted(tuple(sorted(pair)) for pair in conflicts))
        )
        if plan is not None:
            self.channels: Tuple[Channel, ...] = plan.all_channels()
            self.channel_numbers: Tuple[int, ...] = plan.channel_numbers
            self.bonded_pairs: Tuple[Tuple[int, int], ...] = plan.bonded_pairs
        else:
            self.channels = ()
            self.channel_numbers = ()
            self.bonded_pairs = ()
        self.channel_index: Dict[Channel, int] = {
            channel: index for index, channel in enumerate(self.channels)
        }
        n_channels = len(self.channels)
        self.conflict = np.zeros((n_channels, n_channels), dtype=bool)
        self.overlap = np.zeros((n_channels, n_channels), dtype=np.float64)
        for i, own in enumerate(self.channels):
            for j, other in enumerate(self.channels):
                self.conflict[i, j] = own.conflicts_with(other)
                self.overlap[i, j] = spectral_overlap_fraction(own, other)
        self.associations: Tuple[Tuple[str, str], ...] = tuple(
            network.associations.items()
        )
        self.channel_assignment: Tuple[Tuple[str, Channel], ...] = tuple(
            network.channel_assignment.items()
        )
        self._rate_tables: Dict[int, tuple] = {}
        # Lazily-built carrier-sense cache for incremental graph rebuilds
        # on geometric networks (see apply_churn); process-local.
        self._hearing_cache: Optional[dict] = None
        # Per-shard slices keyed by (sid, member tuple); process-local,
        # dropped whenever churn rebinds the underlying arrays.
        self._shard_views: Dict[tuple, "ShardView"] = {}
        self._decomposition: Optional[ComponentDecomposition] = None

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        network: Network,
        graph=None,
        plan: Optional[ChannelPlan] = None,
    ) -> "CompiledNetwork":
        """Snapshot ``network`` (and optionally its palette) into arrays.

        ``graph`` defaults to a freshly built interference graph. The
        result is decoupled from the source network: later mutations are
        not reflected — recompile instead.
        """
        return cls(network, graph=graph, plan=plan)

    @property
    def n_aps(self) -> int:
        """Number of APs (integer ids are ``range(n_aps)``)."""
        return len(self.ap_ids)

    @property
    def n_clients(self) -> int:
        """Number of clients (integer ids are ``range(n_clients)``)."""
        return len(self.client_ids)

    # ------------------------------------------------------------------
    def thaw(self) -> Network:
        """Reconstruct an equivalent mutable :class:`Network`.

        Devices, raw SNR overrides, explicit conflicts, associations and
        channels are replayed in their recorded insertion order, so the
        thawed network evaluates bit-identically to the original.
        """
        network = Network(self.config)
        for ap, ap_id in enumerate(self.ap_ids):
            network.add_ap(
                ap_id,
                position=self.ap_positions[ap],
                tx_power_dbm=float(self.tx_power_dbm[ap]),
            )
        for client, client_id in enumerate(self.client_ids):
            network.add_client(client_id, position=self.client_positions[client])
        for ap_id, client_id, value in self.snr_overrides:
            network.set_link_snr(ap_id, client_id, value)
        if self.explicit_conflicts is not None:
            network.set_explicit_conflicts(list(self.explicit_conflicts))
        for client_id, ap_id in self.associations:
            network.associate(client_id, ap_id)
        for ap_id, channel in self.channel_assignment:
            network.set_channel(ap_id, channel)
        return network

    def fingerprint(self) -> str:
        """Digest of the frozen state (``network_fingerprint`` of a thaw)."""
        return network_fingerprint(self.thaw())

    def candidate_aps(
        self, client_id: str, min_snr20_db: float = -5.0
    ) -> Tuple[str, ...]:
        """The serving set A_u, identical to ``Network.candidate_aps``.

        Vectorised over the SNR matrix; the comparison floats are the
        same ones the legacy per-call path derives, so the returned
        tuple matches exactly (AP insertion order).
        """
        client = self.client_index.get(client_id)
        if client is None:
            raise TopologyError(f"unknown client {client_id!r}")
        mask = self.has_link[:, client] & (
            self.snr20_db[:, client] >= min_snr20_db
        )
        return tuple(self.ap_ids[int(ap)] for ap in np.nonzero(mask)[0])

    def rate_tables(self, model: ThroughputModel) -> RateTables:
        """Per-model :class:`RateTables`, cached by model identity."""
        key = id(model)
        cached = self._rate_tables.get(key)
        if cached is not None:
            ref, tables = cached
            if ref() is model:
                return tables
        tables = RateTables(self, model)
        self._rate_tables[key] = (weakref.ref(model), tables)
        return tables

    def decomposition(self) -> ComponentDecomposition:
        """Components of the compiled interference graph (cached).

        Ids are fresh ``0..k-1`` for *this* snapshot. A controller that
        needs ids stable across churn keeps its own
        :class:`~repro.graph.components.ComponentDecomposition` and
        calls :meth:`~repro.graph.components.ComponentDecomposition.update`
        — this accessor is the anonymous, snapshot-local view.
        """
        if self._decomposition is None:
            adjacency: Dict[str, Tuple[str, ...]] = {}
            for ap, ap_id in enumerate(self.ap_ids):
                neighbours = self.neighbor_lists[ap]
                if neighbours is None:
                    raise TopologyError(
                        f"AP {ap_id!r} is outside the compiled interference "
                        "graph; compile with the full graph to decompose"
                    )
                adjacency[ap_id] = tuple(self.ap_ids[j] for j in neighbours)
            self._decomposition = ComponentDecomposition.from_adjacency(
                self.ap_ids, adjacency
            )
        return self._decomposition

    def shard_view(
        self,
        sid: int,
        decomposition: Optional[ComponentDecomposition] = None,
    ) -> "ShardView":
        """A :class:`ShardView` slicing this snapshot to one shard.

        ``decomposition`` supplies the id→members mapping (defaults to
        the snapshot-local :meth:`decomposition`); views are cached by
        ``(sid, members)`` so churn-stable ids from a controller-owned
        decomposition and snapshot-local ids can coexist.
        """
        source = decomposition if decomposition is not None else self.decomposition()
        members = source.members(sid)
        key = (sid, members)
        view = self._shard_views.get(key)
        if view is None:
            view = ShardView(self, sid, members)
            self._shard_views[key] = view
        return view

    def __getstate__(self) -> dict:
        """Pickle without the process-local per-model table cache."""
        state = dict(self.__dict__)
        state["_rate_tables"] = {}
        state["_hearing_cache"] = None
        state["_shard_views"] = {}
        state["_decomposition"] = None
        return state

    # ------------------------------------------------------------------
    # Incremental recompilation
    # ------------------------------------------------------------------
    def apply_churn(
        self,
        network: Network,
        added_clients: "Tuple[str, ...] | List[str]" = (),
        removed_clients: "Tuple[str, ...] | List[str]" = (),
    ):
        """Patch the snapshot in place after client arrival/departure.

        ``network`` is the already-mutated source network (clients added
        via :meth:`Network.add_client` / removed via
        :meth:`Network.remove_client`, associations updated). The AP set,
        AP geometry/power, existing client positions, the channel
        palette and the config must be unchanged — anything else needs a
        fresh :meth:`compile`. Kept SNR columns and rate-table entries
        are gathered by index; fresh columns run through the exact same
        scalar ``link_budget`` pipeline as :meth:`compile`, so the
        patched state is bit-identical to a fresh compile of ``network``
        (equal :meth:`fingerprint`, equal evaluation results — enforced
        by the timeline differential suite). Dense arrays are *rebound*,
        not mutated, so evaluators built earlier stay internally
        consistent — but they describe the pre-churn network; build new
        engines after patching. Returns the rebuilt interference graph.

        Cost is O(APs × changed clients) plus a cheap column gather —
        near ``compiled_ms`` instead of ``compile_ms`` — which is what
        makes per-event reconfiguration affordable in
        :mod:`repro.sim.timeline`.
        """
        if network.ap_ids != self.ap_ids:
            raise TopologyError(
                "apply_churn only patches client churn; the AP set changed "
                "— recompile instead"
            )
        added = frozenset(added_clients)
        removed = frozenset(removed_clients)
        new_ids = network.client_ids
        new_index = {cid: k for k, cid in enumerate(new_ids)}
        for cid in removed:
            if cid not in self.client_index:
                raise TopologyError(
                    f"removed client {cid!r} was not in the snapshot"
                )
            if cid in new_index and cid not in added:
                raise TopologyError(
                    f"removed client {cid!r} is still in the network"
                )
        for cid in added:
            if cid not in new_index:
                raise TopologyError(
                    f"added client {cid!r} is not in the network"
                )
        col_src: List[int] = []
        for cid in new_ids:
            if cid in added:
                col_src.append(-1)
                continue
            src = self.client_index.get(cid)
            if src is None:
                raise TopologyError(
                    f"client {cid!r} appeared without being declared in "
                    "added_clients"
                )
            col_src.append(src)
        for cid in self.client_ids:
            if cid not in removed and cid not in new_index:
                raise TopologyError(
                    f"client {cid!r} disappeared without being declared in "
                    "removed_clients"
                )

        n_aps = len(self.ap_ids)
        n_clients = len(new_ids)
        fresh_cols = [k for k, src in enumerate(col_src) if src < 0]
        # Identity churn (association/channel resync only): the client
        # axis is unchanged, so the SNR matrices and every rate table
        # stay valid — only the graph and the state tuples move.
        identity = not fresh_cols and new_ids == self.client_ids
        if not identity:
            src_arr = np.asarray(col_src, dtype=np.int64)
            kept = src_arr >= 0
            has_link = np.zeros((n_aps, n_clients), dtype=bool)
            snr20_db = np.full((n_aps, n_clients), -np.inf, dtype=np.float64)
            snr40_db = np.full((n_aps, n_clients), -np.inf, dtype=np.float64)
            if n_clients and kept.any():
                gather = src_arr[kept]
                has_link[:, kept] = self.has_link[:, gather]
                snr20_db[:, kept] = self.snr20_db[:, gather]
                snr40_db[:, kept] = self.snr40_db[:, gather]
            for k in fresh_cols:
                client_id = new_ids[k]
                for ap, ap_id in enumerate(self.ap_ids):
                    if not network.has_link(ap_id, client_id):
                        continue
                    budget = network.link_budget(ap_id, client_id)
                    has_link[ap, k] = True
                    snr20_db[ap, k] = budget.subcarrier_snr_db(OFDM_20MHZ)
                    snr40_db[ap, k] = budget.subcarrier_snr_db(OFDM_40MHZ)

        graph = self._churn_graph(network, new_ids, new_index, added, removed)

        # Point of no return: rebind everything atomically-ish (pure
        # python, single-threaded contract).
        self.client_ids = new_ids
        self.client_index = new_index
        self.client_positions = tuple(
            network.client(cid).position for cid in new_ids
        )
        if not identity:
            self.has_link = has_link
            self.snr20_db = snr20_db
            self.snr40_db = snr40_db
        self.snr_overrides = tuple(
            (ap_id, client_id, value)
            for (ap_id, client_id), value in network._snr_overrides.items()
        )
        self.associations = tuple(network.associations.items())
        self.channel_assignment = tuple(network.channel_assignment.items())
        conflicts = network.explicit_conflicts
        self.explicit_conflicts = (
            None
            if conflicts is None
            else tuple(sorted(tuple(sorted(pair)) for pair in conflicts))
        )
        self.adj_indptr, self.adj_indices, self.in_graph = adjacency_arrays(
            graph, self.ap_ids
        )
        flat = [int(j) for j in self.adj_indices]
        self.neighbor_lists = tuple(
            tuple(flat[self.adj_indptr[ap] : self.adj_indptr[ap + 1]])
            if self.in_graph[ap]
            else None
            for ap in range(n_aps)
        )
        if not identity:
            self._patch_rate_tables(col_src, fresh_cols)
        # Shard structure may have merged/split (footnote-5 edges moved)
        # and the views hold references to the pre-churn arrays.
        self._shard_views = {}
        self._decomposition = None
        return graph

    def _churn_graph(
        self,
        network: Network,
        new_ids: Tuple[str, ...],
        new_index: Dict[str, int],
        added: frozenset,
        removed: frozenset,
    ):
        """Interference graph of the churned network, incrementally.

        Explicit-conflicts scenarios rebuild through the (cheap)
        early-return path of :func:`build_interference_graph`. Geometric
        scenarios reassemble the footnote-5 edge set from cached
        carrier-sense hearing matrices: the AP×AP square never changes
        under client churn and AP×client columns only change for
        arriving clients, so the per-event cost is O(APs × arrivals)
        scalar propagation tests instead of O(APs² × clients).
        """
        if network.explicit_conflicts is not None:
            return build_interference_graph(network)
        cache = getattr(self, "_hearing_cache", None)
        if cache is None:
            cache = {"square": ap_hearing_square(network), "columns": {}}
            self._hearing_cache = cache
        columns: Dict[str, np.ndarray] = cache["columns"]
        for cid in removed:
            columns.pop(cid, None)
        fresh = [
            cid for cid in new_ids if cid in added or cid not in columns
        ]
        if fresh:
            fresh_matrix = ap_hearing_columns(network, fresh)
            for k, cid in enumerate(fresh):
                columns[cid] = np.ascontiguousarray(fresh_matrix[:, k])
        n_aps = len(self.ap_ids)
        hears_client = np.zeros((n_aps, len(new_ids)), dtype=bool)
        for k, cid in enumerate(new_ids):
            hears_client[:, k] = columns[cid]
        association = np.zeros((n_aps, len(new_ids)), dtype=bool)
        for cid, ap_id in network.associations.items():
            association[self.ap_index[ap_id], new_index[cid]] = True
        return graph_from_hearing(
            self.ap_ids, cache["square"], hears_client, association
        )

    def _patch_rate_tables(
        self, col_src: List[int], fresh_cols: List[int]
    ) -> None:
        """Re-key live per-model rate tables to the churned client axis.

        Kept entries are gathered (they are the exact floats a fresh
        build would recompute); fresh clients run through the same
        ``decision_from_snr`` + ``client_delay_s`` scalar pipeline as
        :meth:`RateTables.__init__`. Dead model weakrefs are dropped.
        """
        if not self._rate_tables:
            return
        nan = float("nan")
        snr_matrices = (self.snr20_db, self.snr40_db)
        patched_cache: Dict[int, tuple] = {}
        for key, (ref, tables) in self._rate_tables.items():
            model = ref()
            if model is None:
                continue
            packet_bytes = model.packet_bytes
            timings = model.timings
            goodput_factor = model.traffic.goodput_factor
            patched = RateTables.__new__(RateTables)
            patched.delay = []
            patched.factor = []
            for width, params in enumerate(_WIDTH_PARAMS):
                snr_matrix = snr_matrices[width]
                old_delay = tables.delay[width]
                old_factor = tables.factor[width]
                delay_rows: List[List[float]] = []
                factor_rows: List[List[float]] = []
                for ap in range(self.n_aps):
                    old_drow = old_delay[ap]
                    old_frow = old_factor[ap]
                    drow = [
                        old_drow[src] if src >= 0 else nan for src in col_src
                    ]
                    frow = [
                        old_frow[src] if src >= 0 else nan for src in col_src
                    ]
                    linked = self.has_link[ap]
                    snr_row = snr_matrix[ap]
                    for k in fresh_cols:
                        if not linked[k]:
                            continue
                        decision = model.decision_from_snr(
                            float(snr_row[k]), params
                        )
                        drow[k] = client_delay_s(
                            decision.nominal_rate_mbps,
                            decision.per,
                            packet_bytes,
                            timings,
                        )
                        frow[k] = goodput_factor(decision.per)
                    delay_rows.append(drow)
                    factor_rows.append(frow)
                patched.delay.append(delay_rows)
                patched.factor.append(factor_rows)
            patched_cache[key] = (ref, patched)
        self._rate_tables = patched_cache


class ShardView:
    """A read-only per-shard slice of a :class:`CompiledNetwork`.

    The local AP axis holds one interference component's members in
    global AP order; the local client axis holds every client with a
    link to a member AP, in global client order. SNR/link matrices are
    fancy-index *copies* (the parent rebinds its arrays under churn —
    a view must not alias a snapshot that moves underneath it), the
    CSR adjacency is re-indexed into the local id space, and the id
    maps translate both directions. Components are closed under
    interference adjacency, so the slice loses no edges — construction
    verifies that.

    The service front-end routes requests, batches beacon updates and
    reports stats through these views; the allocation hot path stays on
    the *global* engine with a shard scope, which is what makes the
    sharded results bit-identical to the unsharded ones.
    """

    def __init__(
        self,
        parent: CompiledNetwork,
        sid: int,
        members: "Tuple[str, ...] | List[str]",
    ) -> None:
        self.parent = parent
        self.sid = sid
        self.ap_ids: Tuple[str, ...] = tuple(members)
        if not self.ap_ids:
            raise TopologyError(f"shard {sid} has no members")
        missing = [a for a in self.ap_ids if a not in parent.ap_index]
        if missing:
            raise TopologyError(
                f"shard {sid} members {missing} are not in the snapshot"
            )
        self.ap_rows = np.asarray(
            [parent.ap_index[ap_id] for ap_id in self.ap_ids], dtype=np.int64
        )
        self.ap_index: Dict[str, int] = {
            ap_id: index for index, ap_id in enumerate(self.ap_ids)
        }
        member_set = frozenset(self.ap_ids)
        if parent.n_clients:
            mask = parent.has_link[self.ap_rows, :].any(axis=0)
            for client_id, ap_id in parent.associations:
                if ap_id in member_set:
                    mask[parent.client_index[client_id]] = True
            self.client_cols = np.nonzero(mask)[0]
        else:
            self.client_cols = np.zeros(0, dtype=np.int64)
        self.client_ids: Tuple[str, ...] = tuple(
            parent.client_ids[int(col)] for col in self.client_cols
        )
        self.client_index: Dict[str, int] = {
            client_id: index for index, client_id in enumerate(self.client_ids)
        }
        grid = np.ix_(self.ap_rows, self.client_cols)
        self.has_link = parent.has_link[grid]
        self.snr20_db = parent.snr20_db[grid]
        self.snr40_db = parent.snr40_db[grid]
        indptr: List[int] = [0]
        indices: List[int] = []
        for ap_id, row in zip(self.ap_ids, self.ap_rows):
            neighbours = parent.neighbor_lists[int(row)]
            if neighbours is None:
                raise TopologyError(
                    f"AP {ap_id!r} is outside the compiled interference graph"
                )
            for global_index in neighbours:
                neighbour_id = parent.ap_ids[global_index]
                local = self.ap_index.get(neighbour_id)
                if local is None:
                    raise TopologyError(
                        f"shard {sid} is not closed under interference "
                        f"adjacency: {ap_id!r} hears {neighbour_id!r}"
                    )
                indices.append(local)
            indptr.append(len(indices))
        self.adj_indptr = np.asarray(indptr, dtype=np.int64)
        self.adj_indices = np.asarray(indices, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n_aps(self) -> int:
        """Member APs (local integer ids are ``range(n_aps)``)."""
        return len(self.ap_ids)

    @property
    def n_clients(self) -> int:
        """Clients linked into the shard."""
        return len(self.client_ids)

    def to_global_ap(self, local: int) -> int:
        """Local AP index → parent AP index."""
        return int(self.ap_rows[local])

    def to_local_ap(self, ap_id: str) -> int:
        """AP name → local index (members only)."""
        try:
            return self.ap_index[ap_id]
        except KeyError:
            raise TopologyError(
                f"AP {ap_id!r} is not a member of shard {self.sid}"
            ) from None

    def to_global_client(self, local: int) -> int:
        """Local client index → parent client index."""
        return int(self.client_cols[local])

    def to_local_client(self, client_id: str) -> int:
        """Client name → local index (linked clients only)."""
        try:
            return self.client_index[client_id]
        except KeyError:
            raise TopologyError(
                f"client {client_id!r} is not linked into shard {self.sid}"
            ) from None

    # ------------------------------------------------------------------
    @property
    def channel_assignment(self) -> Dict[str, Channel]:
        """The members' slice of the snapshot's channel assignment."""
        members = frozenset(self.ap_ids)
        return {
            ap_id: channel
            for ap_id, channel in self.parent.channel_assignment
            if ap_id in members
        }

    @property
    def associations(self) -> Dict[str, str]:
        """Client→AP pairs served inside this shard."""
        members = frozenset(self.ap_ids)
        return {
            client_id: ap_id
            for client_id, ap_id in self.parent.associations
            if ap_id in members
        }

    def candidate_aps(
        self, client_id: str, min_snr20_db: float = -5.0
    ) -> Tuple[str, ...]:
        """The serving set A_u restricted to this shard's members.

        Same floats, same AP order as the parent's
        :meth:`CompiledNetwork.candidate_aps`, filtered to members.
        """
        local = self.to_local_client(client_id)
        mask = self.has_link[:, local] & (
            self.snr20_db[:, local] >= min_snr20_db
        )
        return tuple(self.ap_ids[int(ap)] for ap in np.nonzero(mask)[0])

    def rate_tables(self, model: ThroughputModel) -> RateTables:
        """The members×linked-clients slice of the parent's rate tables.

        Entries are the parent's exact floats (gathered, not
        recomputed), indexed by local ids.
        """
        tables = self.parent.rate_tables(model)
        rows = [int(row) for row in self.ap_rows]
        cols = [int(col) for col in self.client_cols]
        sliced = RateTables.__new__(RateTables)
        sliced.delay = [
            [[tables.delay[width][ap][client] for client in cols] for ap in rows]
            for width in range(len(_WIDTH_PARAMS))
        ]
        sliced.factor = [
            [[tables.factor[width][ap][client] for client in cols] for ap in rows]
            for width in range(len(_WIDTH_PARAMS))
        ]
        return sliced

    def fingerprint(self) -> str:
        """Canonical digest of the slice (ids, links, SNRs, adjacency)."""
        payload = {
            "version": _FINGERPRINT_VERSION,
            "sid": self.sid,
            "ap_ids": list(self.ap_ids),
            "client_ids": list(self.client_ids),
            "has_link": self.has_link.astype(int).ravel().tolist(),
            "snr20": [_hex(v) for v in self.snr20_db.ravel().tolist()],
            "snr40": [_hex(v) for v in self.snr40_db.ravel().tolist()],
            "indptr": self.adj_indptr.tolist(),
            "indices": self.adj_indices.tolist(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardView(sid={self.sid}, n_aps={self.n_aps}, "
            f"n_clients={self.n_clients})"
        )


class CompiledEvaluator:
    """Index-based incremental evaluator over a :class:`CompiledNetwork`.

    A drop-in replacement for the structural tier of
    :class:`~repro.net.evaluator.DeltaEvaluator` — same ``trial`` /
    ``commit`` / ``rollback`` / ``reset`` / ``trial_move`` /
    ``commit_move`` surface plus integer-id fast variants
    (:meth:`trial_index`, :meth:`commit_index`) for allocator hot loops.
    Every float it produces replays the legacy engine's operation order,
    so results are bit-identical; construction fails for models that
    :func:`supports_compiled` rejects.

    When all contention weights are integer-valued (the stock binary
    model), neighbour loads update incrementally — exact, because sums
    of small integers are closed under float arithmetic — and cell
    values memoise in flat lists indexed by load. Non-integer weights
    (partial spectral overlap) fall back to order-preserving fresh load
    sums per trial.
    """

    def __init__(
        self,
        compiled: CompiledNetwork,
        model: Optional[ThroughputModel] = None,
        assignment: Optional[Mapping[str, Channel]] = None,
        associations: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Build the engine; defaults mirror the compiled snapshots."""
        self._compiled = compiled
        self._model = model if model is not None else ThroughputModel()
        if not supports_compiled(self._model):
            raise AllocationError(
                "model overrides evaluation hooks the compiled engine cannot "
                "replay; use DeltaEvaluator instead"
            )
        self.stats = EngineStats()
        self._tables = compiled.rate_tables(self._model)
        self._packet_mbits = 8 * self._model.packet_bytes / 1e6
        self._ap_ids = compiled.ap_ids
        self._client_ids = compiled.client_ids
        self._ap_index = compiled.ap_index
        self._client_index = compiled.client_index
        self._nbr = compiled.neighbor_lists
        n_aps = len(self._ap_ids)
        self._channels: List[Channel] = []
        self._channel_index: Dict[Channel, int] = {}
        self._weight_rows: List[List[float]] = []
        self._widths: List[int] = []
        self._int_weights = True
        assoc_items = (
            compiled.associations
            if associations is None
            else tuple(associations.items())
        )
        self._assoc: Dict[int, int] = {}
        for client_id, ap_id in assoc_items:
            client = self._client_index.get(client_id)
            owner = self._ap_index.get(ap_id)
            if client is None or owner is None:
                raise AllocationError(
                    f"association {client_id!r}->{ap_id!r} names an unknown device"
                )
            self._assoc[client] = owner
        assignment_items = (
            compiled.channel_assignment
            if assignment is None
            else tuple(assignment.items())
        )
        self._chan: List[int] = [-1] * n_aps
        for ap_id, channel in assignment_items:
            owner = self._ap_index.get(ap_id)
            if owner is None:
                raise AllocationError(f"unknown AP {ap_id!r} in assignment")
            if channel is not None:
                self._chan[owner] = self._intern(channel)
        self._profiles: List[List[Optional[tuple]]] = [
            [None, None] for _ in range(n_aps)
        ]
        self._cells_fast: List[List[List[Optional[float]]]] = [
            [[], []] for _ in range(n_aps)
        ]
        self._cells: List[Dict[tuple, float]] = [{} for _ in range(n_aps)]
        self._clients_of: List[Optional[List[int]]] = [None] * n_aps
        self._loads: List[Optional[float]] = [None] * n_aps
        self._x: List[float] = [0.0] * n_aps
        self._aggregate = 0.0
        self._undo: Optional[tuple] = None
        self._rebuild()

    # ------------------------------------------------------------------
    # Introspection facade (mirrors DeltaEvaluator)
    # ------------------------------------------------------------------
    @property
    def aggregate_mbps(self) -> float:
        """The current committed aggregate throughput Y."""
        return self._aggregate

    @property
    def assignment(self) -> Dict[str, Channel]:
        """A copy of the current committed assignment (string-keyed)."""
        channels = self._channels
        return {
            self._ap_ids[ap]: channels[index]
            for ap, index in enumerate(self._chan)
            if index >= 0
        }

    @property
    def associations(self) -> Dict[str, str]:
        """A copy of the current committed associations (string-keyed)."""
        return {
            self._client_ids[client]: self._ap_ids[owner]
            for client, owner in self._assoc.items()
        }

    @property
    def tier(self) -> str:
        """Always ``"compiled"`` — the index fast path."""
        return "compiled"

    @property
    def compiled(self) -> CompiledNetwork:
        """The frozen network this engine evaluates over."""
        return self._compiled

    def channel_of(self, ap_id: str) -> Optional[Channel]:
        """The AP's committed channel, or ``None`` if unassigned."""
        owner = self._ap_index.get(ap_id)
        if owner is None:
            return None
        index = self._chan[owner]
        return self._channels[index] if index >= 0 else None

    def per_ap_mbps(self) -> Dict[str, float]:
        """Per-AP cell throughputs of the committed state."""
        return {
            self._ap_ids[ap]: self._x[ap] for ap in range(len(self._ap_ids))
        }

    def channel_index_of(self, ap: int) -> int:
        """Committed channel index of AP ``ap``, or -1 when unassigned."""
        return self._chan[ap]

    def intern(self, channel: Channel) -> int:
        """Dense index of a colour, stable for this engine's lifetime."""
        return self._intern(channel)

    # ------------------------------------------------------------------
    # Channel interning and contention arithmetic
    # ------------------------------------------------------------------
    def _intern(self, channel: Channel) -> int:
        index = self._channel_index.get(channel)
        if index is None:
            weight = self._model.contention_weight
            index = len(self._channels)
            for other_index, other_row in enumerate(self._weight_rows):
                value = weight(self._channels[other_index], channel)
                if not float(value).is_integer():
                    self._int_weights = False
                other_row.append(value)
            self._channel_index[channel] = index
            self._channels.append(channel)
            row = [weight(channel, other) for other in self._channels]
            for value in row:
                if not float(value).is_integer():
                    self._int_weights = False
            self._weight_rows.append(row)
            self._widths.append(1 if channel.is_bonded else 0)
            self.stats.weight_evaluations += 2 * index + 1
        return index

    def contention_load(
        self,
        ap_id: str,
        channel: Channel,
        assignment: Optional[Mapping[str, Channel]] = None,
    ) -> float:
        """Σ of neighbour contention weights if ``ap_id`` used ``channel``.

        String facade matching ``DeltaEvaluator.contention_load``:
        defaults to the committed state; an explicit ``assignment`` makes
        it a stateless conflict oracle (the Kauffmann baseline).
        """
        ap = self._ap_index.get(ap_id)
        if ap is None or self._nbr[ap] is None:
            raise AllocationError(
                f"AP {ap_id!r} is not in the interference graph"
            )
        row = self._weight_rows[self._intern(channel)]
        total = 0.0
        if assignment is None:
            chan = self._chan
            for other in self._nbr[ap]:
                j = chan[other]
                if j >= 0:
                    total += row[j]
            return total
        ap_ids = self._ap_ids
        for other in self._nbr[ap]:
            other_channel = assignment.get(ap_ids[other])
            if other_channel is None:
                continue
            total += row[self._intern(other_channel)]
        return total

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------
    def _client_list(self, ap: int) -> List[int]:
        clients = [
            client for client, owner in self._assoc.items() if owner == ap
        ]
        self._clients_of[ap] = clients
        return clients

    def _profile(self, ap: int, width: int, clients: List[int]) -> tuple:
        profile = self._profiles[ap][width]
        if profile is None:
            delay_row = self._tables.delay[width][ap]
            factor_row = self._tables.factor[width][ap]
            delays = [delay_row[client] for client in clients]
            factors = tuple(factor_row[client] for client in clients)
            self.stats.cell_profile_builds += 1
            # sum() in client order replicates the dict engine exactly.
            profile = (sum(delays), factors)
            self._profiles[ap][width] = profile
        return profile

    def _compute_cell(
        self, ap: int, width: int, load: float, clients: List[int]
    ) -> float:
        m_share = 1.0 / (1.0 + load)
        atd, factors = self._profile(ap, width, clients)
        if atd == float("inf"):
            return 0.0
        base = m_share / atd
        packet_mbits = self._packet_mbits
        return sum(base * packet_mbits * factor for factor in factors)

    def _cell_value(
        self, ap: int, width: int, load: float, clients: List[int]
    ) -> float:
        self.stats.cell_updates += 1
        if self._int_weights:
            row = self._cells_fast[ap][width]
            load_key = int(load)
            if load_key < len(row):
                value = row[load_key]
                if value is not None:
                    return value
            else:
                row.extend([None] * (load_key + 1 - len(row)))
            value = self._compute_cell(ap, width, load, clients)
            row[load_key] = value
            return value
        cache = self._cells[ap]
        key = (width, load)
        value = cache.get(key)
        if value is None:
            value = self._compute_cell(ap, width, load, clients)
            cache[key] = value
        return value

    def _fresh_load(self, ap: int, row: List[float]) -> float:
        nbrs = self._nbr[ap]
        if nbrs is None:
            raise AllocationError(
                f"AP {self._ap_ids[ap]!r} is not in the interference graph"
            )
        chan = self._chan
        total = 0.0
        for other in nbrs:
            j = chan[other]
            if j >= 0:
                total += row[j]
        return total

    def _structural_x(self, ap: int) -> float:
        channel_index = self._chan[ap]
        if channel_index < 0:
            return 0.0
        clients = self._clients_of[ap]
        if clients is None:
            clients = self._client_list(ap)
        if not clients:
            return 0.0
        load = self._loads[ap]
        if load is None:
            load = self._fresh_load(ap, self._weight_rows[channel_index])
            self._loads[ap] = load
        return self._cell_value(ap, self._widths[channel_index], load, clients)

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        n_aps = len(self._ap_ids)
        self._clients_of = [None] * n_aps
        self._loads = [None] * n_aps
        self._undo = None
        x = [self._structural_x(ap) for ap in range(n_aps)]
        self._x = x
        self._aggregate = sum(x)

    def reset(self, assignment: Mapping[str, Channel]) -> float:
        """Replace the committed assignment wholesale; returns Y.

        Cell-profile and cell-value caches survive — they depend only on
        topology and associations — so multi-restart searches pay the
        link mathematics once (same contract as the dict engine).
        """
        self.stats.resets += 1
        chan = [-1] * len(self._ap_ids)
        for ap_id, channel in assignment.items():
            owner = self._ap_index.get(ap_id)
            if owner is None:
                raise AllocationError(f"unknown AP {ap_id!r} in assignment")
            if channel is not None:
                chan[owner] = self._intern(channel)
        self._chan = chan
        clients_of = self._clients_of
        self._rebuild()
        self._clients_of = clients_of  # association state did not change
        return self._aggregate

    # ------------------------------------------------------------------
    # Channel trials (index hot path + string facade)
    # ------------------------------------------------------------------
    def trial_index(self, ap: int, channel_index: int) -> float:
        """Y if AP ``ap`` moved to ``channel_index`` — pure what-if.

        The allocator hot path: integer ids in, exact float out. Only
        the ``{a} ∪ N_IG(a)`` neighbourhood is rescored; the substituted
        total replays the dict engine's summation order bit-for-bit.
        """
        self.stats.trials += 1
        nbrs = self._nbr[ap]
        if nbrs is None:
            raise AllocationError(
                f"AP {self._ap_ids[ap]!r} is not in the interference graph"
            )
        chan = self._chan
        rows = self._weight_rows
        widths = self._widths
        x = self._x
        clients_of = self._clients_of
        old_index = chan[ap]
        clients = clients_of[ap]
        if clients is None:
            clients = self._client_list(ap)
        if clients:
            row = rows[channel_index]
            load = 0.0
            for other in nbrs:
                j = chan[other]
                if j >= 0:
                    load += row[j]
            own_value = self._cell_value(ap, widths[channel_index], load, clients)
        else:
            own_value = 0.0
        saved = [(ap, x[ap])]
        x[ap] = own_value
        int_weights = self._int_weights
        loads = self._loads
        all_nbrs = self._nbr
        for b in nbrs:
            jb = chan[b]
            if jb < 0:
                continue  # inactive neighbour: X stays 0.0
            nb_clients = clients_of[b]
            if nb_clients is None:
                nb_clients = self._client_list(b)
            if not nb_clients:
                continue  # empty cell: X stays 0.0
            row_b = rows[jb]
            if int_weights:
                # Incremental: exact for integer weights (sums of small
                # integers are closed under float64 arithmetic, so this
                # equals the fresh CSR-order sum bit-for-bit).
                load_b = loads[b]
                if load_b is None:
                    load_b = 0.0
                    for other in all_nbrs[b]:
                        j = chan[other]
                        if j >= 0:
                            load_b += row_b[j]
                    loads[b] = load_b
                new_load = load_b + row_b[channel_index]
                if old_index >= 0:
                    new_load -= row_b[old_index]
            else:
                # Non-integer weights: order-preserving fresh sum with
                # the trial channel substituted in place.
                new_load = 0.0
                for other in all_nbrs[b]:
                    j = channel_index if other == ap else chan[other]
                    if j >= 0:
                        new_load += row_b[j]
            saved.append((b, x[b]))
            x[b] = self._cell_value(b, widths[jb], new_load, nb_clients)
        total = sum(x)
        for index, value in saved:
            x[index] = value
        return total

    def trial(self, ap_id: str, channel: Channel) -> float:
        """String facade over :meth:`trial_index`."""
        ap = self._ap_index.get(ap_id)
        if ap is None:
            raise AllocationError(f"unknown AP {ap_id!r}")
        return self.trial_index(ap, self._intern(channel))

    def commit_index(self, ap: int, channel_index: int) -> float:
        """Apply a channel switch by index; returns the new committed Y."""
        self.stats.commits += 1
        nbrs = self._nbr[ap]
        if nbrs is None:
            raise AllocationError(
                f"AP {self._ap_ids[ap]!r} is not in the interference graph"
            )
        touched = (ap,) + nbrs
        self._undo = (
            "channel",
            ap,
            self._chan[ap],
            [(t, self._x[t]) for t in touched],
            [(t, self._loads[t]) for t in touched],
            self._aggregate,
        )
        self._chan[ap] = channel_index
        loads = self._loads
        for t in touched:
            loads[t] = None
        for t in touched:
            self._x[t] = self._structural_x(t)
        self._aggregate = sum(self._x)
        return self._aggregate

    def commit(self, ap_id: str, channel: Channel) -> float:
        """String facade over :meth:`commit_index`."""
        ap = self._ap_index.get(ap_id)
        if ap is None:
            raise AllocationError(f"unknown AP {ap_id!r}")
        return self.commit_index(ap, self._intern(channel))

    def rollback(self) -> float:
        """Undo the most recent ``commit``/``commit_move``; returns Y."""
        if self._undo is None:
            raise AllocationError("nothing to roll back")
        self.stats.rollbacks += 1
        record = self._undo
        if record[0] == "channel":
            _, ap, previous, old_x, old_loads, old_aggregate = record
            self._chan[ap] = previous
            for index, value in old_x:
                self._x[index] = value
            for index, value in old_loads:
                self._loads[index] = value
        else:
            (
                _,
                client,
                previous,
                old_x,
                old_lists,
                old_profiles,
                old_cells_fast,
                old_cells,
                old_aggregate,
            ) = record
            if previous is None:
                self._assoc.pop(client, None)
            else:
                self._assoc[client] = previous
            for index, value in old_x:
                self._x[index] = value
            for index, value in old_lists:
                self._clients_of[index] = value
            for index, value in old_profiles:
                self._profiles[index] = value
            for index, value in old_cells_fast:
                self._cells_fast[index] = value
            for index, value in old_cells:
                self._cells[index] = value
        self._aggregate = old_aggregate
        self._undo = None
        return self._aggregate

    # ------------------------------------------------------------------
    # Association trials (the refinement local search)
    # ------------------------------------------------------------------
    def _move_indices(self, client_id: str, target_ap: str) -> tuple:
        target = self._ap_index.get(target_ap)
        if target is None:
            raise AllocationError(f"unknown AP {target_ap!r}")
        client = self._client_index.get(client_id)
        if client is None:
            raise AllocationError(f"unknown client {client_id!r}")
        if self._chan[target] >= 0 and not self._compiled.has_link[
            target, client
        ]:
            # The dict engine raises from Network.link_budget when the
            # target cell's profile is rebuilt; raising here keeps error
            # parity (and, for commit_move, fails before any mutation).
            raise TopologyError(
                "no SNR override and no geometry for link "
                f"{target_ap!r}->{client_id!r}"
            )
        return client, target

    def _move_cell_values(
        self, client: int, target: int, previous: "Optional[int]"
    ) -> "Tuple[Tuple[int, ...], Tuple[float, ...]]":
        """What-if cell values for the APs a re-association touches.

        The shared core of :meth:`trial_move` and :meth:`move_values`:
        recomputes the source and target cells with fresh profiles (as
        the dict engine does for overlaid memberships) and returns the
        touched AP indices with their substituted X values, in touch
        order. Medium shares are untouched by an association move, so
        no other cell changes.
        """
        touched: List[int] = []
        for ap in (previous, target):
            if ap is not None and ap not in touched:
                touched.append(ap)
        values: List[float] = []
        for ap in touched:
            channel_index = self._chan[ap]
            if channel_index < 0:
                value = 0.0
            else:
                clients: List[int] = []
                for other, owner in self._assoc.items():
                    if (target if other == client else owner) == ap:
                        clients.append(other)
                if previous is None and target == ap and client not in clients:
                    clients.append(client)
                if not clients:
                    value = 0.0
                else:
                    load = self._loads[ap]
                    if load is None:
                        load = self._fresh_load(
                            ap, self._weight_rows[channel_index]
                        )
                    width = self._widths[channel_index]
                    delay_row = self._tables.delay[width][ap]
                    factor_row = self._tables.factor[width][ap]
                    delays = [delay_row[c] for c in clients]
                    factors = tuple(factor_row[c] for c in clients)
                    self.stats.cell_profile_builds += 1
                    atd = sum(delays)
                    if atd == float("inf"):
                        value = 0.0
                    else:
                        base = (1.0 / (1.0 + load)) / atd
                        packet_mbits = self._packet_mbits
                        value = sum(
                            base * packet_mbits * factor for factor in factors
                        )
            values.append(value)
        return tuple(touched), tuple(values)

    def move_values(
        self, client_id: str, target_ap: str
    ) -> "Tuple[Tuple[int, ...], Tuple[float, ...]]":
        """Touched AP indices and their what-if X values for a move.

        The seam used by :class:`repro.net.batch.BatchedEvaluator`'s
        association-move batching: the caller substitutes these values
        into a column matrix and reduces many candidates at once; the
        floats are exactly those :meth:`trial_move` would substitute.
        Counts as one trial in :attr:`stats`, like :meth:`trial_move`.
        """
        self.stats.trials += 1
        client, target = self._move_indices(client_id, target_ap)
        previous = self._assoc.get(client)
        return self._move_cell_values(client, target, previous)

    def trial_move(self, client_id: str, target_ap: str) -> float:
        """Y if ``client_id`` re-associated to ``target_ap`` (pure what-if).

        Medium shares are untouched by an association move, so only the
        source and target cells are recomputed — with fresh profiles, as
        the dict engine does for overlaid memberships.
        """
        self.stats.trials += 1
        client, target = self._move_indices(client_id, target_ap)
        previous = self._assoc.get(client)
        touched, values = self._move_cell_values(client, target, previous)
        x = self._x
        saved = []
        for ap, value in zip(touched, values):
            saved.append((ap, x[ap]))
            x[ap] = value
        total = sum(x)
        for index, value in saved:
            x[index] = value
        return total

    def commit_move(self, client_id: str, target_ap: str) -> float:
        """Apply a client re-association; returns the new committed Y."""
        self.stats.commits += 1
        client, target = self._move_indices(client_id, target_ap)
        previous = self._assoc.get(client)
        touched: List[int] = []
        for ap in (previous, target):
            if ap is not None and ap not in touched:
                touched.append(ap)
        self._undo = (
            "move",
            client,
            previous,
            [(ap, self._x[ap]) for ap in touched],
            [(ap, self._clients_of[ap]) for ap in touched],
            [(ap, self._profiles[ap]) for ap in touched],
            [(ap, self._cells_fast[ap]) for ap in touched],
            [(ap, self._cells[ap]) for ap in touched],
            self._aggregate,
        )
        self._assoc[client] = target
        for ap in touched:
            # Membership changed: client lists, profiles and memoised
            # cell values for the two affected APs are stale.
            self._clients_of[ap] = None
            self._profiles[ap] = [None, None]
            self._cells_fast[ap] = [[], []]
            self._cells[ap] = {}
        for ap in touched:
            self._x[ap] = self._structural_x(ap)
        self._aggregate = sum(self._x)
        return self._aggregate
