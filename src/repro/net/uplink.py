"""Saturated-uplink throughput: per-station contention across cells.

The paper assumes saturated *downlink* traffic (one transmitter — the
AP — per cell, contending with neighbour APs). Under saturated uplink,
every client is a transmitter: DCF hands equal transmission
opportunities to every *station* sharing the spectrum, across cell
boundaries. The cell's throughput becomes

``X_a = K_a · L / Σ_{v ∈ stations on a's channel} d_v``

— a single global round-robin over all co-channel stations. With no
co-channel neighbours this collapses to the downlink formula K·L/ATD,
and the performance anomaly now leaks *between* cells: one slow uplink
client in a neighbouring cell on the same channel drags everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import networkx as nx

from ..errors import AllocationError
from ..mac.airtime import client_delay_s
from .channels import Channel
from .throughput import ThroughputModel
from .topology import Network

__all__ = ["UplinkThroughputModel"]


@dataclass
class UplinkThroughputModel(ThroughputModel):
    """Evaluator for saturated uplink traffic.

    Client link decisions reuse the downlink machinery (the channel is
    reciprocal at these time scales); what changes is the sharing: the
    airtime cycle spans every station on a conflicting channel within
    interference range.
    """

    def ap_throughput_mbps(
        self,
        network: Network,
        graph: nx.Graph,
        ap_id: str,
        assignment: Mapping[str, Channel],
        associations: Mapping[str, str],
    ) -> Tuple[float, Dict[str, float]]:
        """Cell throughput under the global per-station uplink cycle."""
        channel = assignment.get(ap_id)
        if channel is None:
            raise AllocationError(f"AP {ap_id!r} has no channel in the assignment")
        own_clients = [
            client for client, ap in associations.items() if ap == ap_id
        ]
        if not own_clients:
            return 0.0, {}

        def cell_delays(cell_ap: str, cell_channel: Channel) -> Dict[str, float]:
            delays = {}
            for client_id in (
                client for client, ap in associations.items() if ap == cell_ap
            ):
                decision = self.link_decision(
                    network, cell_ap, client_id, cell_channel
                )
                delays[client_id] = client_delay_s(
                    decision.nominal_rate_mbps,
                    decision.per,
                    self.packet_bytes,
                    self.timings,
                )
            return delays

        own_delays = cell_delays(ap_id, channel)
        cycle = sum(own_delays.values())
        # Stations of conflicting neighbour cells join the same cycle.
        for neighbour in graph.neighbors(ap_id):
            other = assignment.get(neighbour)
            if other is None or not channel.conflicts_with(other):
                continue
            cycle += sum(cell_delays(neighbour, other).values())
        if cycle == float("inf") or cycle <= 0:
            return 0.0, {client: 0.0 for client in own_clients}
        packet_mbits = 8 * self.packet_bytes / 1e6
        per_client = {}
        for client_id in own_clients:
            factor = self.traffic.goodput_factor(
                self.link_decision(network, ap_id, client_id, channel).per
            )
            per_client[client_id] = packet_mbits / cycle * factor
        return sum(per_client.values()), per_client
