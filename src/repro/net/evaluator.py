"""Incremental (delta) evaluation of the aggregate-throughput objective.

Every allocator in this repository optimises the same objective
``Y(F) = Σ_a X_a`` (Eq. 5), and until now every candidate configuration
paid a *full-network* :meth:`repro.net.throughput.ThroughputModel.evaluate`
— re-deriving each AP's link budgets, rate decisions, client delays and
medium share from scratch, ``O(n·(clients + deg))`` work per trial.

The physics of the model makes almost all of that work redundant.  The
cell throughput decomposes as ``X_a = M_a · S_a`` where

* ``S_a`` (the *cell profile*: per-client delays/ATD and goodput
  factors) depends only on AP ``a``'s own channel and its own clients —
  never on any other AP's channel, and
* ``M_a`` (the medium share) depends only on the channels of ``a`` and
  its interference-graph neighbours ``N_IG(a)``.

**Invalidation rule.**  Trying "what if AP *a* moved to channel *c*?"
can therefore change only ``X_a`` and ``{X_b : b ∈ N_IG(a)}`` — every
other cell's medium share and link decisions are untouched.  A
:class:`DeltaEvaluator` holds the current assignment, caches the cell
profiles per (AP, channel) and the contention loads per AP, and answers
a trial by recomputing only the ``{a} ∪ N_IG(a)`` neighbourhood —
``O(deg(a)·Δ)`` cheap arithmetic instead of a full model pass.  All link
budgets and subcarrier-SNR maths are computed once per (AP, channel) and
then leave the inner loop entirely.

Committed aggregates are arithmetically *identical* (bit-for-bit, same
floating-point operation order) to a fresh full ``evaluate()`` for the
stock models: touched contention loads are recomputed fresh in
``graph.neighbors`` order and cells replay the exact operation sequence
of :meth:`~repro.net.throughput.ThroughputModel.ap_throughput_mbps`.

Three execution tiers keep arbitrary models correct:

* ``structural`` — the fast path described above.  Requires the model's
  medium share to be ``1/(1 + Σ contention_weight)`` (true for the base
  binary-conflict model and :class:`WeightedThroughputModel`) and a
  stock per-AP throughput.  Detected via method identity; subclasses
  that override both ``medium_share_of`` *and* ``contention_weight``
  consistently can opt in with a class attribute
  ``delta_structural = True``.
* ``neighborhood`` — for models with a custom per-AP throughput whose
  ``X_a`` still depends only on the ``{a} ∪ N_IG(a)`` channels (e.g.
  :class:`~repro.net.uplink.UplinkThroughputModel`): recompute
  ``ap_throughput_mbps`` for the touched neighbourhood only.
* ``full`` — models that override ``evaluate()`` wholesale fall back to
  a complete model pass per trial (the pre-engine behaviour, so nothing
  can regress).

An initialisation self-check compares the engine's aggregate against the
model's own per-AP arithmetic and demotes ``structural`` to
``neighborhood`` on any mismatch, so a subtly inconsistent subclass can
slow the engine down but not corrupt it.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from ..errors import AllocationError
from ..mac.airtime import client_delay_s
from .channels import Channel
from .throughput import ThroughputModel, WeightedThroughputModel
from .topology import Network

__all__ = ["DeltaEvaluator", "FullEvaluationEngine", "EngineStats"]

# Sentinel for "the AP had no channel before this commit".
_UNASSIGNED = object()


class _Overlay(MappingABC):
    """A one-key substitution view over a mapping, without copying.

    Iteration order matches the base mapping exactly (the override key
    keeps its original position), so downstream code that depends on
    dict order — client lists, contention sums — sees the same sequence
    a mutated copy would produce.
    """

    __slots__ = ("_base", "_key", "_value")

    def __init__(self, base: Mapping, key, value) -> None:
        self._base = base
        self._key = key
        self._value = value

    def __getitem__(self, key):
        if key == self._key:
            return self._value
        return self._base[key]

    def get(self, key, default=None):
        """Mapping.get without the MutableMapping copy overhead."""
        if key == self._key:
            return self._value
        return self._base.get(key, default)

    def __iter__(self) -> Iterator:
        if self._key in self._base:
            return iter(self._base)

        def chain():
            yield from self._base
            yield self._key

        return chain()

    def __len__(self) -> int:
        return len(self._base) + (0 if self._key in self._base else 1)


@dataclass
class EngineStats:
    """Operation counters for complexity accounting and benchmarks.

    ``cell_profile_builds`` counts the expensive link-budget → SNR →
    rate-decision → delay pipelines (each covers every client of one AP
    on one channel); ``cell_updates`` counts cheap cached-profile
    re-scalings; ``weight_evaluations`` counts *distinct* channel-pair
    contention-weight computations (pairs are memoised in a matrix, so
    this saturates at ``|palette|²`` while a full evaluation re-checks
    ``Σ deg`` pairs per call).  A full evaluation performs ``n_aps``
    profile builds *per call*; the delta engine performs them once per
    (AP, channel) *per topology*.
    """

    trials: int = 0
    commits: int = 0
    rollbacks: int = 0
    resets: int = 0
    full_evaluations: int = 0
    cell_profile_builds: int = 0
    cell_updates: int = 0
    weight_evaluations: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for benchmark JSON emission)."""
        return {
            "trials": self.trials,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "resets": self.resets,
            "full_evaluations": self.full_evaluations,
            "cell_profile_builds": self.cell_profile_builds,
            "cell_updates": self.cell_updates,
            "weight_evaluations": self.weight_evaluations,
        }


class DeltaEvaluator:
    """Stateful incremental evaluator of the aggregate objective Y.

    Parameters
    ----------
    network:
        The WLAN under evaluation.  Topology, link qualities and (unless
        overridden) associations are snapshotted at construction.
    graph:
        The AP interference graph.
    model:
        The throughput model; defaults to a stock
        :class:`~repro.net.throughput.ThroughputModel`.
    assignment:
        Authoritative channel assignment to start from.  Defaults to a
        snapshot of ``network.channel_assignment``.  APs absent from the
        assignment are inactive: they carry no traffic and project no
        contention, exactly as in a full evaluation.
    associations:
        Client→AP mapping to evaluate under; defaults to a snapshot of
        ``network.associations``.

    The engine exposes ``trial`` (pure what-if), ``commit``/``rollback``
    (apply/undo a switch in one neighbourhood's worth of work), the
    association counterparts ``trial_move``/``commit_move``, and
    ``reset`` for multi-restart searches (cell-profile caches survive a
    reset — they are assignment-independent).
    """

    def __init__(
        self,
        network: Network,
        graph: nx.Graph,
        model: Optional[ThroughputModel] = None,
        assignment: Optional[Mapping[str, Channel]] = None,
        associations: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._network = network
        self._graph = graph
        self._model = model if model is not None else ThroughputModel()
        self._ap_ids: Tuple[str, ...] = network.ap_ids
        self._neighbors: Dict[str, Tuple[str, ...]] = {
            ap: tuple(graph.neighbors(ap)) if ap in graph else None
            for ap in self._ap_ids
        }
        self._assignment: Dict[str, Channel] = dict(
            network.channel_assignment if assignment is None else assignment
        )
        self._associations: Dict[str, str] = dict(
            network.associations if associations is None else associations
        )
        self._packet_mbits = 8 * self._model.packet_bytes / 1e6
        # Channel interning: every distinct colour maps to a dense index
        # and pairwise contention weights live in a memoised matrix, so
        # the hot load sums are pure list-indexed float adds — no
        # conflicts_with set algebra in the inner loop.
        self._channels: List[Channel] = []
        self._channel_index: Dict[Channel, int] = {}
        self._weight_rows: List[List[float]] = []
        self._assignment_idx: Dict[str, int] = {}
        # (atd, goodput factors in client order) per AP per channel index.
        self._profiles: Dict[str, Dict[int, Tuple[float, Tuple[float, ...]]]] = {
            ap: {} for ap in self._ap_ids
        }
        # Memoised cell values: X_a is a pure function of the AP's
        # channel and contention load (given fixed associations), so a
        # value computed once is reused verbatim — bit-exact by
        # construction.
        self._cells: Dict[str, Dict[Tuple[int, float], float]] = {
            ap: {} for ap in self._ap_ids
        }
        self._clients_of: Dict[str, List[str]] = {}
        self._loads: Dict[str, float] = {}
        self._x: Dict[str, float] = {}
        self._aggregate: float = 0.0
        self._undo: Optional[tuple] = None
        self.stats = EngineStats()
        self._tier = self._select_tier()
        self._rebuild()
        self._self_check()

    # ------------------------------------------------------------------
    # Tier selection and safety
    # ------------------------------------------------------------------
    def _select_tier(self) -> str:
        cls = type(self._model)
        stock_evaluate = cls.evaluate is ThroughputModel.evaluate
        stock_cell = cls.ap_throughput_mbps is ThroughputModel.ap_throughput_mbps
        share_consistent = cls.medium_share_of in (
            ThroughputModel.medium_share_of,
            WeightedThroughputModel.medium_share_of,
        ) or getattr(self._model, "delta_structural", False)
        if stock_evaluate and stock_cell and share_consistent:
            return "structural"
        if stock_evaluate and getattr(self._model, "delta_neighborhood", True):
            return "neighborhood"
        return "full"

    def _self_check(self) -> None:
        """Demote the structural fast path if the model disagrees with it."""
        if self._tier != "structural" or not self._assignment:
            return
        reference = 0.0
        for ap_id in self._ap_ids:
            if self._assignment.get(ap_id) is None:
                continue
            reference += self._model.ap_throughput_mbps(
                self._network, self._graph, ap_id, self._assignment, self._associations
            )[0]
        if abs(reference - self._aggregate) > 1e-9 * max(1.0, abs(reference)):
            self._tier = "neighborhood"
            self._rebuild()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def aggregate_mbps(self) -> float:
        """The current committed aggregate throughput Y."""
        return self._aggregate

    @property
    def assignment(self) -> Dict[str, Channel]:
        """A copy of the current committed assignment."""
        return dict(self._assignment)

    @property
    def associations(self) -> Dict[str, str]:
        """A copy of the current committed associations."""
        return dict(self._associations)

    @property
    def tier(self) -> str:
        """Active execution tier: ``structural``, ``neighborhood`` or ``full``."""
        return self._tier

    def channel_of(self, ap_id: str) -> Optional[Channel]:
        """The AP's committed channel, or ``None`` if unassigned."""
        return self._assignment.get(ap_id)

    def per_ap_mbps(self) -> Dict[str, float]:
        """Per-AP cell throughputs of the committed state."""
        return dict(self._x)

    # ------------------------------------------------------------------
    # Contention arithmetic (shared by all allocators)
    # ------------------------------------------------------------------
    def _neighbors_of(self, ap_id: str) -> Tuple[str, ...]:
        neighbors = self._neighbors.get(ap_id)
        if neighbors is None:
            raise AllocationError(
                f"AP {ap_id!r} is not in the interference graph"
            )
        return neighbors

    def _intern(self, channel: Channel) -> int:
        """Dense index of a colour; first sight fills its weight row.

        ``contention_weight`` runs once per distinct channel pair for
        the engine's lifetime — the matrix turns every later load sum
        into list-indexed float adds with an identical addition order,
        so memoisation cannot move a single bit.
        """
        index = self._channel_index.get(channel)
        if index is None:
            weight = self._model.contention_weight
            index = len(self._channels)
            for other_index, other_row in enumerate(self._weight_rows):
                other_row.append(weight(self._channels[other_index], channel))
            self._channel_index[channel] = index
            self._channels.append(channel)
            self._weight_rows.append(
                [weight(channel, other) for other in self._channels]
            )
            self.stats.weight_evaluations += 2 * index + 1
        return index

    def contention_load(
        self,
        ap_id: str,
        channel: Channel,
        assignment: Optional[Mapping[str, Channel]] = None,
    ) -> float:
        """Σ of neighbour contention weights if ``ap_id`` used ``channel``.

        With the base binary-conflict model this is the conflicting
        neighbour count of footnote 5; with the weighted model it is the
        spectral-overlap sum.  ``assignment`` defaults to the engine's
        committed state — passing an explicit mapping makes this a
        stateless conflict oracle (used by the Kauffmann baseline).
        """
        row = self._weight_rows[self._intern(channel)]
        total = 0.0
        if assignment is None:
            indices = self._assignment_idx
            for neighbour in self._neighbors_of(ap_id):
                if neighbour == ap_id:
                    continue
                other = indices.get(neighbour)
                if other is None:
                    continue
                total += row[other]
            return total
        for neighbour in self._neighbors_of(ap_id):
            if neighbour == ap_id:
                continue
            other = assignment.get(neighbour)
            if other is None:
                continue
            total += row[self._intern(other)]
        return total

    # ------------------------------------------------------------------
    # Cell arithmetic (structural tier)
    # ------------------------------------------------------------------
    def _client_list(self, ap_id: str) -> List[str]:
        clients = self._clients_of.get(ap_id)
        if clients is None:
            clients = [
                client
                for client, ap in self._associations.items()
                if ap == ap_id
            ]
            self._clients_of[ap_id] = clients
        return clients

    def _profile(
        self, ap_id: str, channel: Channel, channel_index: int, clients: List[str]
    ) -> Tuple[float, Tuple[float, ...]]:
        """(ATD, goodput factors) for one AP on one channel, cached.

        This is where all the link-budget / subcarrier-SNR / rate
        selection mathematics happens — once per (AP, channel) for the
        lifetime of the topology, after which trials are pure cached
        arithmetic.
        """
        cache = self._profiles[ap_id]
        profile = cache.get(channel_index)
        if profile is None:
            profile = self._build_profile(ap_id, channel, clients)
            cache[channel_index] = profile
        return profile

    def _build_profile(
        self, ap_id: str, channel: Channel, clients: List[str]
    ) -> Tuple[float, Tuple[float, ...]]:
        model = self._model
        delays: List[float] = []
        factors: List[float] = []
        for client_id in clients:
            decision = model.link_decision(self._network, ap_id, client_id, channel)
            delays.append(
                client_delay_s(
                    decision.nominal_rate_mbps,
                    decision.per,
                    model.packet_bytes,
                    model.timings,
                )
            )
            factors.append(model.traffic.goodput_factor(decision.per))
        self.stats.cell_profile_builds += 1
        # sum() in client order replicates ap_throughput_mbps exactly.
        return sum(delays), tuple(factors)

    def _cell_from_load(
        self,
        ap_id: str,
        channel: Channel,
        channel_index: int,
        load: float,
        clients: List[str],
    ) -> float:
        """X_a from a contention load, replaying the model's arithmetic.

        Memoised per (channel, load): given fixed associations the cell
        value is a pure function of those two, so trials that revisit a
        combination reuse the identical float.
        """
        cache = self._cells[ap_id]
        key = (channel_index, load)
        value = cache.get(key)
        if value is None:
            m_share = 1.0 / (1.0 + load)
            atd, factors = self._profile(ap_id, channel, channel_index, clients)
            if atd == float("inf"):
                value = 0.0
            else:
                base = m_share / atd
                packet_mbits = self._packet_mbits
                value = sum(base * packet_mbits * factor for factor in factors)
            cache[key] = value
        self.stats.cell_updates += 1
        return value

    def _structural_x(self, ap_id: str, channel: Optional[Channel]) -> float:
        if channel is None:
            return 0.0
        clients = self._client_list(ap_id)
        if not clients:
            return 0.0
        load = self._loads.get(ap_id)
        if load is None:
            load = self.contention_load(ap_id, channel)
            self._loads[ap_id] = load
        return self._cell_from_load(
            ap_id, channel, self._assignment_idx[ap_id], load, clients
        )

    # ------------------------------------------------------------------
    # Cell arithmetic (neighborhood / full tiers)
    # ------------------------------------------------------------------
    def _model_x(
        self,
        ap_id: str,
        assignment: Mapping[str, Channel],
        associations: Mapping[str, str],
    ) -> float:
        if assignment.get(ap_id) is None:
            return 0.0
        self.stats.cell_profile_builds += 1
        return self._model.ap_throughput_mbps(
            self._network, self._graph, ap_id, assignment, associations
        )[0]

    def _full_aggregate(
        self,
        assignment: Mapping[str, Channel],
        associations: Mapping[str, str],
    ) -> float:
        self.stats.full_evaluations += 1
        return self._model.aggregate_mbps(
            self._network,
            self._graph,
            assignment=dict(assignment),
            associations=associations,
        )

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute loads and cell throughputs for the committed state."""
        self._clients_of = {}
        self._loads = {}
        self._undo = None
        self._assignment_idx = {
            ap: self._intern(channel)
            for ap, channel in self._assignment.items()
            if channel is not None
        }
        if self._tier == "full":
            self._x = {ap: 0.0 for ap in self._ap_ids}
            self._aggregate = (
                self._full_aggregate(self._assignment, self._associations)
                if self._assignment
                else 0.0
            )
            return
        x: Dict[str, float] = {}
        for ap_id in self._ap_ids:
            channel = self._assignment.get(ap_id)
            if self._tier == "structural":
                x[ap_id] = self._structural_x(ap_id, channel)
            else:
                x[ap_id] = self._model_x(
                    ap_id, self._assignment, self._associations
                )
        self._x = x
        self._aggregate = sum(x.values())

    def reset(self, assignment: Mapping[str, Channel]) -> float:
        """Replace the committed assignment wholesale; returns Y.

        Cell-profile caches survive: they depend only on the topology
        and associations, so multi-restart searches pay the expensive
        link mathematics exactly once.
        """
        self.stats.resets += 1
        self._assignment = dict(assignment)
        clients_of = self._clients_of
        self._rebuild()
        self._clients_of = clients_of  # association state did not change
        return self._aggregate

    # ------------------------------------------------------------------
    # Channel trials
    # ------------------------------------------------------------------
    def _touched_x(
        self, ap_id: str, channel: Channel
    ) -> Dict[str, float]:
        """New cell values for the ``{a} ∪ N_IG(a)`` neighbourhood."""
        new_x: Dict[str, float] = {}
        if self._tier == "neighborhood":
            overlay = _Overlay(self._assignment, ap_id, channel)
            new_x[ap_id] = self._model_x(ap_id, overlay, self._associations)
            for neighbour in self._neighbors_of(ap_id):
                new_x[neighbour] = self._model_x(
                    neighbour, overlay, self._associations
                )
            return new_x
        # Structural tier.  This is the innermost loop of every
        # allocator, so the load sums are inlined with hoisted locals:
        # each touched AP's neighbour list is walked in graph order with
        # at most one channel index substituted, keeping the addition
        # order — and therefore every bit — identical to a
        # committed-state rebuild.
        channel_index = self._intern(channel)
        ap_neighbors = self._neighbors_of(ap_id)
        assignment = self._assignment
        indices = self._assignment_idx
        indices_get = indices.get
        rows = self._weight_rows
        neighbors = self._neighbors
        clients_of = self._clients_of
        cells = self._cells
        stats = self.stats
        clients = clients_of.get(ap_id)
        if clients is None:
            clients = self._client_list(ap_id)
        if clients:
            row = rows[channel_index]
            load = 0.0
            for other in ap_neighbors:
                if other == ap_id:
                    continue
                j = indices_get(other)
                if j is not None:
                    load += row[j]
            value = cells[ap_id].get((channel_index, load))
            if value is None:
                value = self._cell_from_load(
                    ap_id, channel, channel_index, load, clients
                )
            else:
                stats.cell_updates += 1
            new_x[ap_id] = value
        else:
            new_x[ap_id] = 0.0
        # ...and each active neighbour's medium share re-derived.
        for neighbour in ap_neighbors:
            own = assignment.get(neighbour)
            if own is None:
                new_x[neighbour] = 0.0
                continue
            nb_clients = clients_of.get(neighbour)
            if nb_clients is None:
                nb_clients = self._client_list(neighbour)
            if not nb_clients:
                new_x[neighbour] = 0.0
                continue
            own_index = indices[neighbour]
            row = rows[own_index]
            load = 0.0
            for other in neighbors[neighbour]:
                if other == neighbour:
                    continue
                j = channel_index if other == ap_id else indices_get(other)
                if j is not None:
                    load += row[j]
            value = cells[neighbour].get((own_index, load))
            if value is None:
                value = self._cell_from_load(
                    neighbour, own, own_index, load, nb_clients
                )
            else:
                stats.cell_updates += 1
            new_x[neighbour] = value
        return new_x

    def _substituted_total(self, new_x: Mapping[str, float]) -> float:
        x = self._x
        return sum(
            new_x[ap] if ap in new_x else x[ap] for ap in self._ap_ids
        )

    def trial(self, ap_id: str, channel: Channel) -> float:
        """Y if ``ap_id`` moved to ``channel`` — without changing state.

        Recomputes only the ``{a} ∪ N_IG(a)`` neighbourhood; the result
        is arithmetically identical to a fresh full evaluation of the
        modified assignment.
        """
        self.stats.trials += 1
        if ap_id not in self._neighbors:
            raise AllocationError(f"unknown AP {ap_id!r}")
        if self._tier == "full":
            return self._full_aggregate(
                _Overlay(self._assignment, ap_id, channel), self._associations
            )
        return self._substituted_total(self._touched_x(ap_id, channel))

    def commit(self, ap_id: str, channel: Channel) -> float:
        """Apply a channel switch; returns the new committed Y.

        Only the switching AP's neighbourhood is recomputed (loads
        refreshed in ``graph.neighbors`` order so weighted-overlap sums
        stay bit-identical to a full evaluation).  Undoable via
        :meth:`rollback`.
        """
        self.stats.commits += 1
        if ap_id not in self._neighbors:
            raise AllocationError(f"unknown AP {ap_id!r}")
        previous = self._assignment.get(ap_id, _UNASSIGNED)
        touched = (ap_id,) + self._neighbors_of(ap_id)
        self._undo = (
            "channel",
            ap_id,
            previous,
            {ap: self._x[ap] for ap in touched},
            {ap: self._loads[ap] for ap in touched if ap in self._loads},
            self._aggregate,
        )
        self._assignment[ap_id] = channel
        self._assignment_idx[ap_id] = self._intern(channel)
        if self._tier == "full":
            self._aggregate = self._full_aggregate(
                self._assignment, self._associations
            )
            return self._aggregate
        for ap in touched:
            self._loads.pop(ap, None)
        if self._tier == "structural":
            for ap in touched:
                self._x[ap] = self._structural_x(ap, self._assignment.get(ap))
        else:
            for ap in touched:
                self._x[ap] = self._model_x(
                    ap, self._assignment, self._associations
                )
        self._aggregate = sum(self._x.values())
        return self._aggregate

    def rollback(self) -> float:
        """Undo the most recent ``commit``/``commit_move``; returns Y."""
        if self._undo is None:
            raise AllocationError("nothing to roll back")
        self.stats.rollbacks += 1
        kind = self._undo[0]
        if kind == "channel":
            _, ap_id, previous, old_x, old_loads, old_aggregate = self._undo
            if previous is _UNASSIGNED:
                self._assignment.pop(ap_id, None)
                self._assignment_idx.pop(ap_id, None)
            else:
                self._assignment[ap_id] = previous
                self._assignment_idx[ap_id] = self._intern(previous)
            self._x.update(old_x)
            for ap in (ap_id,) + self._neighbors_of(ap_id):
                self._loads.pop(ap, None)
            self._loads.update(old_loads)
        else:
            (
                _,
                client_id,
                previous_ap,
                old_x,
                old_lists,
                old_profiles,
                old_cells,
                old_aggregate,
            ) = self._undo
            if previous_ap is None:
                self._associations.pop(client_id, None)
            else:
                self._associations[client_id] = previous_ap
            self._x.update(old_x)
            for ap, clients in old_lists.items():
                self._clients_of[ap] = clients
            for ap, profiles in old_profiles.items():
                self._profiles[ap] = profiles
            for ap, cell_cache in old_cells.items():
                self._cells[ap] = cell_cache
        self._aggregate = old_aggregate
        self._undo = None
        return self._aggregate

    # ------------------------------------------------------------------
    # Association trials (the refinement local search)
    # ------------------------------------------------------------------
    def _move_touched(self, client_id: str, target_ap: str) -> Tuple[str, ...]:
        current = self._associations.get(client_id)
        touched: List[str] = []
        for ap in (current, target_ap):
            if ap is None or ap in touched:
                continue
            touched.append(ap)
            if self._tier == "neighborhood":
                # A custom cell model (e.g. uplink) may couple a cell to
                # its neighbours' *clients*, so widen the blast radius.
                for neighbour in self._neighbors_of(ap):
                    if neighbour not in touched:
                        touched.append(neighbour)
        return tuple(touched)

    def trial_move(self, client_id: str, target_ap: str) -> float:
        """Y if ``client_id`` re-associated to ``target_ap`` (pure what-if).

        Medium shares are untouched by an association move (the IG is a
        fixed input here, as in the refinement pass), so only the two
        affected cells — plus, for custom cell models, their neighbours —
        are recomputed.
        """
        self.stats.trials += 1
        if target_ap not in self._neighbors:
            raise AllocationError(f"unknown AP {target_ap!r}")
        overlay = _Overlay(self._associations, client_id, target_ap)
        if self._tier == "full":
            return self._full_aggregate(self._assignment, overlay)
        touched = self._move_touched(client_id, target_ap)
        new_x: Dict[str, float] = {}
        for ap in touched:
            channel = self._assignment.get(ap)
            if channel is None:
                new_x[ap] = 0.0
                continue
            if self._tier == "neighborhood":
                new_x[ap] = self._model_x(ap, self._assignment, overlay)
                continue
            clients = [c for c, a in overlay.items() if a == ap]
            if not clients:
                new_x[ap] = 0.0
                continue
            load = self._loads.get(ap)
            if load is None:
                load = self.contention_load(ap, channel)
            atd, factors = self._build_profile(ap, channel, clients)
            if atd == float("inf"):
                new_x[ap] = 0.0
                continue
            base = (1.0 / (1.0 + load)) / atd
            new_x[ap] = sum(
                base * self._packet_mbits * factor for factor in factors
            )
        return self._substituted_total(new_x)

    def commit_move(self, client_id: str, target_ap: str) -> float:
        """Apply a client re-association; returns the new committed Y."""
        self.stats.commits += 1
        if target_ap not in self._neighbors:
            raise AllocationError(f"unknown AP {target_ap!r}")
        previous_ap = self._associations.get(client_id)
        touched = self._move_touched(client_id, target_ap)
        profile_owners = tuple(
            ap for ap in (previous_ap, target_ap) if ap is not None
        )
        self._undo = (
            "move",
            client_id,
            previous_ap,
            {ap: self._x[ap] for ap in touched},
            {
                ap: self._clients_of[ap]
                for ap in profile_owners
                if ap in self._clients_of
            },
            {ap: self._profiles[ap] for ap in profile_owners},
            {ap: self._cells[ap] for ap in profile_owners},
            self._aggregate,
        )
        self._associations[client_id] = target_ap
        if self._tier == "full":
            self._aggregate = self._full_aggregate(
                self._assignment, self._associations
            )
            return self._aggregate
        for ap in profile_owners:
            # Membership changed: cached client lists, cell profiles and
            # memoised cell values for these two APs are stale.
            self._clients_of.pop(ap, None)
            self._profiles[ap] = {}
            self._cells[ap] = {}
        if self._tier == "structural":
            for ap in touched:
                self._x[ap] = self._structural_x(ap, self._assignment.get(ap))
        else:
            for ap in touched:
                self._x[ap] = self._model_x(
                    ap, self._assignment, self._associations
                )
        self._aggregate = sum(self._x.values())
        return self._aggregate


class FullEvaluationEngine:
    """Adapter giving a plain ``EvaluateFn`` the engine interface.

    This is the thin compatibility layer the allocators use when handed
    a bare evaluation callable (distorted-estimator ablations, toy
    objectives in tests): every trial is a full evaluation of a copied
    assignment, exactly the pre-engine behaviour.  Trial results are
    memoised until the next commit so committing a winner costs no extra
    evaluation.
    """

    def __init__(self, evaluate: Callable[[Mapping[str, Channel]], float]) -> None:
        self._fn = evaluate
        self._assignment: Dict[str, Channel] = {}
        self._aggregate: float = 0.0
        self._trials: Dict[Tuple[str, Channel], float] = {}
        self._undo: Optional[tuple] = None

    @property
    def aggregate_mbps(self) -> float:
        """The current committed aggregate."""
        return self._aggregate

    @property
    def assignment(self) -> Dict[str, Channel]:
        """A copy of the current committed assignment."""
        return dict(self._assignment)

    def channel_of(self, ap_id: str) -> Optional[Channel]:
        """The AP's committed channel, or ``None`` if unassigned."""
        return self._assignment.get(ap_id)

    def reset(self, assignment: Mapping[str, Channel]) -> float:
        """Replace the committed assignment; evaluates it once."""
        self._assignment = dict(assignment)
        self._trials.clear()
        self._undo = None
        self._aggregate = self._fn(self._assignment)
        return self._aggregate

    def trial(self, ap_id: str, channel: Channel) -> float:
        """Full evaluation of the assignment with one channel overridden."""
        trial = dict(self._assignment)
        trial[ap_id] = channel
        value = self._fn(trial)
        self._trials[(ap_id, channel)] = value
        return value

    def commit(self, ap_id: str, channel: Channel) -> float:
        """Apply a switch, reusing the memoised trial value when present."""
        previous = self._assignment.get(ap_id, _UNASSIGNED)
        self._undo = (ap_id, previous, self._aggregate)
        value = self._trials.get((ap_id, channel))
        self._assignment[ap_id] = channel
        if value is None:
            value = self._fn(dict(self._assignment))
        self._aggregate = value
        self._trials.clear()
        return self._aggregate

    def rollback(self) -> float:
        """Undo the most recent commit."""
        if self._undo is None:
            raise AllocationError("nothing to roll back")
        ap_id, previous, aggregate = self._undo
        if previous is _UNASSIGNED:
            self._assignment.pop(ap_id, None)
        else:
            self._assignment[ap_id] = previous
        self._aggregate = aggregate
        self._trials.clear()
        self._undo = None
        return self._aggregate
