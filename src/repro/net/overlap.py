"""Partially overlapped channels — the weighted-conflict extension.

The paper's colour model treats conflicts as binary (share any 20 MHz
constituent or not), which is exact for the 5 GHz orthogonal plan it
evaluates on. Its reference [7] (Mishra et al., "Partially overlapped
channels not considered harmful") shows 2.4 GHz channels overlap
*partially*; this module computes spectral overlap fractions from
centre frequencies and widths so the contention model can be extended
to weighted interference (``M = 1/(1 + Σ w)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..errors import ChannelError
from .channels import Channel

__all__ = [
    "channel_center_mhz",
    "spectral_overlap_fraction",
    "weighted_contention_share",
    "TWO_POINT_FOUR_GHZ_CENTERS",
]

# 2.4 GHz band: channel 1 at 2412 MHz, 5 MHz spacing — the classic
# partially-overlapping plan.
TWO_POINT_FOUR_GHZ_CENTERS: Mapping[int, float] = {
    number: 2412.0 + 5.0 * (number - 1) for number in range(1, 14)
}

# 5 GHz: channel 36 at 5180 MHz, 5 MHz per channel number.
_FIVE_GHZ_BASE_MHZ = 5000.0


def channel_center_mhz(channel: Channel) -> float:
    """Centre frequency of a colour.

    5 GHz channel numbers map as 5000 + 5*n; a bonded pair sits halfway
    between its constituents' centres (the shifted Fc the paper notes
    under Fig 1).
    """
    if not isinstance(channel, Channel):
        raise ChannelError(f"expected a Channel, got {channel!r}")
    centers = []
    for number in sorted(channel.constituents):
        if number in TWO_POINT_FOUR_GHZ_CENTERS:
            centers.append(TWO_POINT_FOUR_GHZ_CENTERS[number])
        else:
            centers.append(_FIVE_GHZ_BASE_MHZ + 5.0 * number)
    return sum(centers) / len(centers)


def _band_edges(channel: Channel) -> Tuple[float, float]:
    center = channel_center_mhz(channel)
    half = channel.width_mhz / 2.0
    return center - half, center + half


def spectral_overlap_fraction(a: Channel, b: Channel) -> float:
    """Fraction of channel ``a``'s bandwidth that channel ``b`` covers.

    1.0 for co-channel, 0.0 for orthogonal, in between for partial
    overlap (asymmetric when widths differ: a 40 MHz signal covers all
    of an inner 20 MHz channel, but that 20 MHz covers only half of
    the 40 MHz signal).
    """
    low_a, high_a = _band_edges(a)
    low_b, high_b = _band_edges(b)
    overlap = min(high_a, high_b) - max(low_a, low_b)
    if overlap <= 0:
        return 0.0
    return overlap / (high_a - low_a)


def weighted_contention_share(
    own: Channel, neighbour_channels: "Tuple[Channel, ...] | list"
) -> float:
    """M under weighted interference: ``1 / (1 + Σ overlap)``.

    Each neighbour contributes its overlap fraction onto ``own``'s band
    instead of a binary 0/1 — the [7]-style generalisation. With fully
    orthogonal or fully co-channel neighbours this reduces exactly to
    the paper's ``1/(|con| + 1)``.
    """
    total = 0.0
    for other in neighbour_channels:
        total += spectral_overlap_fraction(own, other)
    return 1.0 / (1.0 + total)
