"""Network substrate: channels/colours, topology, interference, throughput."""

from .channels import Channel, ChannelPlan, FIVE_GHZ_20MHZ_CHANNELS
from .topology import AccessPoint, Client, Network
from .interference import (
    build_interference_graph,
    contenders,
    max_degree,
)
from .throughput import NetworkReport, ThroughputModel, WeightedThroughputModel
from .evaluator import DeltaEvaluator, EngineStats, FullEvaluationEngine
from .state import (
    CompiledEvaluator,
    CompiledNetwork,
    RateTables,
    ShardView,
    network_fingerprint,
    supports_compiled,
)
from .batch import BatchedEvaluator, BatchTables, accumulate_totals
from .uplink import UplinkThroughputModel
from .overlap import (
    channel_center_mhz,
    spectral_overlap_fraction,
    weighted_contention_share,
)
from .serialization import (
    dump_network,
    load_network,
    network_from_dict,
    network_to_dict,
)

__all__ = [
    "Channel",
    "ChannelPlan",
    "FIVE_GHZ_20MHZ_CHANNELS",
    "AccessPoint",
    "Client",
    "Network",
    "build_interference_graph",
    "contenders",
    "max_degree",
    "NetworkReport",
    "ThroughputModel",
    "WeightedThroughputModel",
    "DeltaEvaluator",
    "EngineStats",
    "FullEvaluationEngine",
    "CompiledEvaluator",
    "CompiledNetwork",
    "BatchedEvaluator",
    "BatchTables",
    "accumulate_totals",
    "RateTables",
    "ShardView",
    "network_fingerprint",
    "supports_compiled",
    "UplinkThroughputModel",
    "channel_center_mhz",
    "spectral_overlap_fraction",
    "weighted_contention_share",
    "network_to_dict",
    "network_from_dict",
    "dump_network",
    "load_network",
]
