"""Enterprise WLAN topology: APs, clients, and their radio links.

A :class:`Network` can be built two ways, matching how experiments are
specified in the paper:

* **geometrically** — APs and clients get positions and link SNRs follow
  from the path-loss model (used for random enterprise deployments and
  the mobility experiment), or
* **by link quality** — scenario builders state each AP↔client SNR
  directly ("AP1 serves two poor clients at 1 dB"), which is how the
  paper's Fig 10/11 topologies are described.

Both styles can mix; explicit SNR overrides win over geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..config import MAX_TX_POWER_DBM, SimulationConfig
from ..errors import AssociationError, TopologyError
from ..link.budget import LinkBudget
from .channels import Channel

__all__ = ["AccessPoint", "Client", "Network"]

Position = Tuple[float, float]


@dataclass(frozen=True)
class AccessPoint:
    """One access point."""

    ap_id: str
    position: Optional[Position] = None
    tx_power_dbm: float = MAX_TX_POWER_DBM


@dataclass(frozen=True)
class Client:
    """One (potential) WLAN user."""

    client_id: str
    position: Optional[Position] = None


class Network:
    """Mutable WLAN state: devices, links, associations, channels."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config if config is not None else SimulationConfig()
        self._aps: Dict[str, AccessPoint] = {}
        self._clients: Dict[str, Client] = {}
        self._snr_overrides: Dict[Tuple[str, str], float] = {}
        self.associations: Dict[str, str] = {}
        self.channel_assignment: Dict[str, Channel] = {}
        self._explicit_conflicts: Optional[Set[frozenset]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_ap(
        self,
        ap_id: str,
        position: Optional[Position] = None,
        tx_power_dbm: float = MAX_TX_POWER_DBM,
    ) -> AccessPoint:
        """Register an access point."""
        if ap_id in self._aps:
            raise TopologyError(f"duplicate AP id {ap_id!r}")
        ap = AccessPoint(ap_id=ap_id, position=position, tx_power_dbm=tx_power_dbm)
        self._aps[ap_id] = ap
        return ap

    def add_client(
        self, client_id: str, position: Optional[Position] = None
    ) -> Client:
        """Register a client."""
        if client_id in self._clients:
            raise TopologyError(f"duplicate client id {client_id!r}")
        if client_id in self._aps:
            raise TopologyError(f"id {client_id!r} already names an AP")
        client = Client(client_id=client_id, position=position)
        self._clients[client_id] = client
        return client

    def remove_client(self, client_id: str) -> None:
        """Forget a client entirely: registration, overrides, association.

        Session churn (clients departing mid-day) needs the inverse of
        :meth:`add_client`; the interference graph and any compiled state
        must be refreshed afterwards (see ``CompiledNetwork.apply_churn``).
        """
        if client_id not in self._clients:
            raise TopologyError(f"unknown client {client_id!r}")
        del self._clients[client_id]
        self.associations.pop(client_id, None)
        stale = [key for key in self._snr_overrides if key[1] == client_id]
        for key in stale:
            del self._snr_overrides[key]

    def set_link_snr(self, ap_id: str, client_id: str, snr20_db: float) -> None:
        """Pin the AP↔client link quality (20 MHz per-subcarrier SNR)."""
        self._require_ap(ap_id)
        self._require_client(client_id)
        self._snr_overrides[(ap_id, client_id)] = float(snr20_db)

    def set_explicit_conflicts(
        self, pairs: "List[Tuple[str, str]] | Tuple[Tuple[str, str], ...]"
    ) -> None:
        """Declare the AP interference graph edges directly.

        For SNR-specified scenarios without geometry; replaces the
        path-loss-derived graph entirely (an empty list means an
        interference-free deployment).
        """
        edges: Set[frozenset] = set()
        for a, b in pairs:
            self._require_ap(a)
            self._require_ap(b)
            if a == b:
                raise TopologyError(f"AP {a!r} cannot conflict with itself")
            edges.add(frozenset((a, b)))
        self._explicit_conflicts = edges

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ap_ids(self) -> Tuple[str, ...]:
        """All AP identifiers, in insertion order."""
        return tuple(self._aps)

    @property
    def client_ids(self) -> Tuple[str, ...]:
        """All client identifiers, in insertion order."""
        return tuple(self._clients)

    @property
    def explicit_conflicts(self) -> Optional[Set[frozenset]]:
        """Explicitly declared interference edges, or ``None``."""
        return self._explicit_conflicts

    def ap(self, ap_id: str) -> AccessPoint:
        """Look up an AP."""
        return self._require_ap(ap_id)

    def client(self, client_id: str) -> Client:
        """Look up a client."""
        return self._require_client(client_id)

    def _require_ap(self, ap_id: str) -> AccessPoint:
        try:
            return self._aps[ap_id]
        except KeyError:
            raise TopologyError(f"unknown AP {ap_id!r}") from None

    def _require_client(self, client_id: str) -> Client:
        try:
            return self._clients[client_id]
        except KeyError:
            raise TopologyError(f"unknown client {client_id!r}") from None

    # ------------------------------------------------------------------
    # Radio links
    # ------------------------------------------------------------------
    @staticmethod
    def distance(a: Position, b: Position) -> float:
        """Euclidean distance between two positions."""
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def ap_distance_m(self, ap_a: str, ap_b: str) -> float:
        """Distance between two APs (geometry required)."""
        pa = self._require_ap(ap_a).position
        pb = self._require_ap(ap_b).position
        if pa is None or pb is None:
            raise TopologyError(
                f"APs {ap_a!r}/{ap_b!r} lack positions; "
                "declare conflicts explicitly instead"
            )
        return self.distance(pa, pb)

    def has_link(self, ap_id: str, client_id: str) -> bool:
        """Whether the link quality between an AP and client is defined."""
        if (ap_id, client_id) in self._snr_overrides:
            return True
        ap = self._require_ap(ap_id)
        client = self._require_client(client_id)
        return ap.position is not None and client.position is not None

    def link_budget(self, ap_id: str, client_id: str) -> LinkBudget:
        """Radio budget of one AP↔client link.

        SNR overrides take precedence; otherwise the budget follows from
        the distance and the configured path-loss model.
        """
        override = self._snr_overrides.get((ap_id, client_id))
        ap = self._require_ap(ap_id)
        if override is not None:
            return LinkBudget.from_snr20(
                override,
                tx_power_dbm=ap.tx_power_dbm,
                noise_figure_db=self.config.noise_figure_db,
            )
        client = self._require_client(client_id)
        if ap.position is None or client.position is None:
            raise TopologyError(
                f"no SNR override and no geometry for link {ap_id!r}->{client_id!r}"
            )
        # One shared geometry → budget path (see link.budget): the
        # compiled-state SNR matrices reuse these exact floats.
        return LinkBudget.from_distance(
            self.distance(ap.position, client.position),
            model=self.config.path_loss,
            tx_power_dbm=ap.tx_power_dbm,
            noise_figure_db=self.config.noise_figure_db,
        )

    def candidate_aps(
        self, client_id: str, min_snr20_db: float = -5.0
    ) -> Tuple[str, ...]:
        """The serving set A_u: APs this client could associate with.

        An AP qualifies if the link is defined and its 20 MHz SNR is at
        least ``min_snr20_db`` (below that not even MCS 0 decodes).
        """
        self._require_client(client_id)
        candidates = []
        for ap_id in self._aps:
            if not self.has_link(ap_id, client_id):
                continue
            if self.link_budget(ap_id, client_id).snr20_db >= min_snr20_db:
                candidates.append(ap_id)
        return tuple(candidates)

    # ------------------------------------------------------------------
    # Association and channel state
    # ------------------------------------------------------------------
    def associate(self, client_id: str, ap_id: str) -> None:
        """Associate (or re-associate) a client with an AP."""
        self._require_client(client_id)
        self._require_ap(ap_id)
        if not self.has_link(ap_id, client_id):
            raise AssociationError(
                f"client {client_id!r} has no link to AP {ap_id!r}"
            )
        self.associations[client_id] = ap_id

    def disassociate(self, client_id: str) -> None:
        """Remove a client's association (a no-op if unassociated)."""
        self.associations.pop(client_id, None)

    def clients_of(self, ap_id: str) -> Tuple[str, ...]:
        """Clients currently associated with an AP."""
        self._require_ap(ap_id)
        return tuple(
            client_id
            for client_id, ap in self.associations.items()
            if ap == ap_id
        )

    def set_channel(self, ap_id: str, channel: Channel) -> None:
        """Assign a colour (20 or 40 MHz channel) to an AP."""
        self._require_ap(ap_id)
        if not isinstance(channel, Channel):
            raise TopologyError(f"expected a Channel, got {channel!r}")
        self.channel_assignment[ap_id] = channel

    def snapshot(self) -> "Dict[str, object]":
        """A plain-dict summary of current state (for reports/tests)."""
        return {
            "associations": dict(self.associations),
            "channels": {
                ap: str(channel)
                for ap, channel in self.channel_assignment.items()
            },
        }
