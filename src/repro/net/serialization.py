"""JSON (de)serialisation of networks and configurations.

An operations tool needs to persist what it decided: topology, pinned
link qualities, interference edges, the current channel plan and
associations. The format is a plain JSON-compatible dict, stable across
sessions and diffable in version control.

Format version 2 also persists the simulation config (version 1 silently
dropped it, so loads re-evaluated under defaults) and the compiled-state
fingerprint (:func:`repro.net.state.network_fingerprint`) of the saved
network; loading verifies the rebuilt network hashes to the same value,
so silent corruption or a semantics drift between writer and reader
surfaces as a :class:`~repro.errors.SerializationError` instead of
quietly different throughput numbers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..config import PathLossModel, SimulationConfig
from ..errors import SerializationError
from .channels import Channel
from .state import network_fingerprint
from .topology import Network

__all__ = ["network_to_dict", "network_from_dict", "dump_network", "load_network"]

_FORMAT_VERSION = 2


def _channel_to_dict(channel: Channel) -> Dict[str, Any]:
    return {"primary": channel.primary, "secondary": channel.secondary}


def _channel_from_dict(data: Dict[str, Any]) -> Channel:
    return Channel(primary=data["primary"], secondary=data.get("secondary"))


def _config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    return {
        "seed": config.seed,
        "noise_figure_db": config.noise_figure_db,
        "max_tx_power_dbm": config.max_tx_power_dbm,
        "packet_size_bytes": config.packet_size_bytes,
        "path_loss": {
            "pl0_db": config.path_loss.pl0_db,
            "exponent": config.path_loss.exponent,
            "reference_m": config.path_loss.reference_m,
            "shadowing_sigma_db": config.path_loss.shadowing_sigma_db,
        },
    }


def _config_from_dict(data: Optional[Dict[str, Any]]) -> SimulationConfig:
    if data is None:
        return SimulationConfig()
    loss = data.get("path_loss", {})
    return SimulationConfig(
        seed=int(data.get("seed", SimulationConfig().seed)),
        noise_figure_db=float(data["noise_figure_db"]),
        max_tx_power_dbm=float(data["max_tx_power_dbm"]),
        packet_size_bytes=int(data["packet_size_bytes"]),
        path_loss=PathLossModel(
            pl0_db=float(loss["pl0_db"]),
            exponent=float(loss["exponent"]),
            reference_m=float(loss["reference_m"]),
            shadowing_sigma_db=float(loss["shadowing_sigma_db"]),
        ),
    )


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialise a network to a JSON-compatible dict."""
    aps = []
    for ap_id in network.ap_ids:
        ap = network.ap(ap_id)
        aps.append(
            {
                "id": ap.ap_id,
                "position": list(ap.position) if ap.position else None,
                "tx_power_dbm": ap.tx_power_dbm,
            }
        )
    clients = []
    for client_id in network.client_ids:
        client = network.client(client_id)
        clients.append(
            {
                "id": client.client_id,
                "position": list(client.position) if client.position else None,
            }
        )
    links = [
        {"ap": ap_id, "client": client_id, "snr20_db": snr}
        for (ap_id, client_id), snr in network._snr_overrides.items()
    ]
    conflicts = None
    if network.explicit_conflicts is not None:
        conflicts = [sorted(pair) for pair in network.explicit_conflicts]
        conflicts.sort()
    return {
        "version": _FORMAT_VERSION,
        "config": _config_to_dict(network.config),
        "fingerprint": network_fingerprint(network),
        "aps": aps,
        "clients": clients,
        "links": links,
        "conflicts": conflicts,
        "associations": dict(network.associations),
        "channels": {
            ap_id: _channel_to_dict(channel)
            for ap_id, channel in network.channel_assignment.items()
        },
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a network from its serialised form.

    Raises :class:`~repro.errors.SerializationError` for any format
    version other than the current one (version 1 saves lack the config
    and fingerprint needed to guarantee faithful re-evaluation —
    re-export them with the writer that produced them), and when the
    rebuilt network's fingerprint does not match the recorded one.
    """
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported network format version {version!r}; this reader "
            f"only accepts version {_FORMAT_VERSION}. Version-1 saves omit "
            "the simulation config and state fingerprint; re-export them "
            "with the original writer."
        )
    network = Network(_config_from_dict(data.get("config")))
    for ap in data.get("aps", []):
        position = tuple(ap["position"]) if ap.get("position") else None
        network.add_ap(
            ap["id"],
            position=position,
            tx_power_dbm=ap.get("tx_power_dbm", 23.0),
        )
    for client in data.get("clients", []):
        position = tuple(client["position"]) if client.get("position") else None
        network.add_client(client["id"], position=position)
    for link in data.get("links", []):
        network.set_link_snr(link["ap"], link["client"], link["snr20_db"])
    conflicts = data.get("conflicts")
    if conflicts is not None:
        network.set_explicit_conflicts([tuple(pair) for pair in conflicts])
    for client_id, ap_id in data.get("associations", {}).items():
        network.associate(client_id, ap_id)
    for ap_id, channel_data in data.get("channels", {}).items():
        network.set_channel(ap_id, _channel_from_dict(channel_data))
    recorded = data.get("fingerprint")
    if recorded is not None:
        actual = network_fingerprint(network)
        if actual != recorded:
            raise SerializationError(
                f"saved fingerprint {recorded[:12]}… does not match the "
                f"rebuilt network ({actual[:12]}…); the save is corrupt or "
                "was produced under different evaluation semantics"
            )
    return network


def dump_network(network: Network, path: str) -> None:
    """Write a network to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle, indent=2, sort_keys=True)


def load_network(path: str) -> Network:
    """Read a network from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return network_from_dict(json.load(handle))
