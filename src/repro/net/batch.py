"""Batched vectorized candidate evaluation over the compiled core.

The greedy allocator (Algorithm 2) scores every candidate (AP, channel)
switch of a step through :meth:`~repro.net.state.CompiledEvaluator.
trial_index` — one Python call per candidate, ~K = |remaining| × |palette|
calls per step. Once the network state is frozen into contiguous arrays
(PR 4), the per-candidate arithmetic is tiny and the Python loop itself
dominates. This module evaluates the whole candidate set of a greedy
step — and the candidate sets of *every* multi-start replica — as a
handful of numpy operations, bit-identical to the scalar oracle:

* **Loads.** All contention weights produced by the stock binary and
  weighted-overlap models are dyadic rationals (multiples of ``1/2**k``
  for a small ``k``, detected at runtime). Sums and dot products of
  dyadic rationals of these magnitudes are *exact* in float64 — every
  partial sum is representable — so candidate contention loads may be
  computed in any order (``counts @ weights.T``, per-edge incremental
  updates) and still equal the scalar engine's sequential sums bit for
  bit. Non-dyadic custom weights fall back to the scalar
  ``trial_index`` per candidate (still exact, just not vectorized).
* **Cells.** Per-AP cell throughputs depend only on ``(ap, width,
  load)``. A dense grid indexed by ``(ap * 2 + width, load * scale)``
  caches them; misses are filled through the wrapped engine's own
  :meth:`~repro.net.state.CompiledEvaluator._cell_value` — the exact,
  memoised scalar path — then gathered with one fancy index. The grid
  is shared by all replicas of a multi-start run via
  :class:`BatchTables` (associations, and therefore cell values, are
  identical across replicas).
* **Totals.** ``trial_index`` ends with Python's left-to-right
  ``sum(x)`` over the substituted per-AP vector. The batched path
  builds an ``(n_aps, K)`` column matrix (committed ``x`` broadcast,
  touched rows scattered per candidate) and accumulates row by row —
  ``total += matrix[ap]`` for ascending ``ap`` — which replays that
  exact summation order per column. ``np.sum``/``np.add.reduce`` use
  pairwise summation and are deliberately avoided.

Candidate *selection* (the allocator's ratchet with its ``1e-12``
floor) stays sequential in the caller — it is order-dependent and
cheap; only the O(n_aps × K) arithmetic is vectorized here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import AllocationError
from .channels import Channel
from .state import CompiledEvaluator

__all__ = [
    "BatchTables",
    "BatchedEvaluator",
    "CandidateBlock",
    "accumulate_totals",
]

# Dyadic scales probed for exact load quantisation, smallest first.
# Powers of two only: multiplying a float by one is always exact.
_SCALES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

# Initial cell-grid capacity along the quantised-load axis.
_INITIAL_Q_CAP = 64


def _dyadic_scale(weights: np.ndarray) -> Optional[int]:
    """Smallest power-of-two ``s`` with every ``weight * s`` integral.

    Returns ``None`` when no probed scale works — the caller must fall
    back to scalar evaluation, because vectorized reordering of the
    load sums would no longer be exact.
    """
    for scale in _SCALES:
        scaled = weights * scale
        if np.array_equal(scaled, np.floor(scaled)):
            return scale
    return None


class BatchTables:
    """Cell-value grid shared by the replicas of one multi-start run.

    Cell throughput depends only on ``(ap, width, load)`` — not on the
    channel identity or on which replica asks — so one dense grid,
    indexed by ``slot = ap * 2 + width`` and ``q = load * scale``,
    serves every :class:`BatchedEvaluator` of a run. ``NaN`` marks an
    unfilled entry (a genuinely-NaN cell value would merely be
    recomputed on every gather, never mis-read).
    """

    def __init__(self) -> None:
        self.scale: Optional[int] = None
        self.grid: Optional[np.ndarray] = None

    def adopt_scale(self, scale: int) -> None:
        """Raise the shared quantisation scale to cover ``scale``.

        Scales are powers of two, so the shared scale is their max; a
        growth invalidates the ``q`` axis and the grid is dropped (the
        refill cost is negligible — entries are memoised scalars).
        """
        if self.scale is None or scale > self.scale:
            self.scale = scale
            self.grid = None

    def ensure(self, n_slots: int, q_cap: int) -> np.ndarray:
        """The grid, grown to at least ``(n_slots, q_cap)``."""
        grid = self.grid
        if grid is None:
            cap = max(_INITIAL_Q_CAP, q_cap)
            grid = np.full((n_slots, cap), np.nan)
            self.grid = grid
        elif grid.shape[1] < q_cap:
            cap = max(q_cap, 2 * grid.shape[1])
            grown = np.full((grid.shape[0], cap), np.nan)
            grown[:, : grid.shape[1]] = grid
            grid = grown
            self.grid = grid
        return grid


@dataclass
class CandidateBlock:
    """One greedy superstep's candidate scores, pre-accumulation.

    ``matrix`` is the ``(n_aps, K)`` column matrix of substituted
    per-AP throughputs (fast path); ``totals`` carries pre-computed
    candidate totals instead when the evaluator fell back to scalar
    trials. ``skip`` flags candidates equal to the AP's current channel
    — the allocator never evaluates those, so their column content is
    unspecified. Candidates are laid out AP-major, palette-minor,
    matching the scalar scan order; ``width`` is the palette length.
    """

    skip: np.ndarray
    width: int
    matrix: Optional[np.ndarray] = None
    totals: Optional[np.ndarray] = None

    @property
    def n_candidates(self) -> int:
        """Total candidate count K, skipped entries included."""
        return int(self.skip.size)

    def evaluated(self) -> int:
        """Candidates actually scored (K minus the skipped no-ops)."""
        return int(self.skip.size - int(self.skip.sum()))


def accumulate_totals(blocks: Sequence[CandidateBlock]) -> List[np.ndarray]:
    """Candidate totals for each block, replaying ``sum(x)`` exactly.

    Column matrices from all blocks (typically one per multi-start
    replica) are stacked along the candidate axis and accumulated row
    by row in ascending AP order — the same left-to-right order as the
    scalar engine's ``sum(x)`` — so every total is bit-identical to the
    corresponding :meth:`~repro.net.state.CompiledEvaluator.trial_index`
    value. Blocks that already carry ``totals`` pass through untouched.
    """
    matrices = [block.matrix for block in blocks if block.matrix is not None]
    stacked_totals: Optional[np.ndarray] = None
    if matrices:
        stacked = matrices[0] if len(matrices) == 1 else np.hstack(matrices)
        stacked_totals = np.zeros(stacked.shape[1])
        for ap in range(stacked.shape[0]):
            stacked_totals += stacked[ap]
    results: List[np.ndarray] = []
    offset = 0
    for block in blocks:
        if block.matrix is not None:
            assert stacked_totals is not None
            k = block.matrix.shape[1]
            results.append(stacked_totals[offset : offset + k])
            offset += k
        else:
            assert block.totals is not None
            results.append(block.totals)
    return results


class BatchedEvaluator:
    """Vectorized K-candidate scorer over one :class:`CompiledEvaluator`.

    Wraps (not replaces) a compiled engine: committed state, commits,
    rollbacks and caches stay on the engine; this class only *reads*
    its arrays to score many what-ifs at once. Every value it produces
    is bit-identical to the engine's scalar ``trial_index`` /
    ``trial_move`` / ``contention_load`` for the same inputs — the
    equivalence the differential harness in
    ``tests/test_batched_evaluator.py`` enforces.

    Pass a shared :class:`BatchTables` to let multi-start replicas
    (identical associations, hence identical cell values) reuse one
    cell grid.

    ``scope`` restricts which APs may *move* through this evaluator: a
    shard-scoped allocation or refinement hands the batch the compiled
    indices of one interference component, and any proposed switch or
    association move touching an AP outside it raises — a guard against
    shard-routing bugs, not a numeric change (scored values are
    identical with or without a scope).
    """

    def __init__(
        self,
        engine: CompiledEvaluator,
        tables: Optional[BatchTables] = None,
        scope: Optional[Sequence[int]] = None,
    ) -> None:
        """Wrap ``engine``; mirrors build lazily on first use."""
        if not isinstance(engine, CompiledEvaluator):
            raise AllocationError(
                "BatchedEvaluator wraps a CompiledEvaluator; got "
                f"{type(engine).__name__}"
            )
        self.engine = engine
        self.tables = tables if tables is not None else BatchTables()
        self.scope: Optional[frozenset] = (
            frozenset(int(ap) for ap in scope) if scope is not None else None
        )
        if self.scope is not None:
            n = len(engine.compiled.ap_ids)
            bad = [ap for ap in sorted(self.scope) if ap < 0 or ap >= n]
            if bad:
                raise AllocationError(
                    f"scope indices {bad} are outside the compiled AP range"
                )
        compiled = engine.compiled
        self._n_aps = len(compiled.ap_ids)
        indptr = np.asarray(compiled.adj_indptr, dtype=np.int64)
        self._edge_dst = np.asarray(compiled.adj_indices, dtype=np.int64)
        self._edge_src = np.repeat(
            np.arange(self._n_aps, dtype=np.int64), np.diff(indptr)
        )
        self._in_graph = np.asarray(compiled.in_graph, dtype=bool)
        self._indptr = indptr
        self._max_degree = (
            int(np.diff(indptr).max()) if self._n_aps else 0
        )
        self._n_channels = -1  # mirror staleness marker
        self._weights: Optional[np.ndarray] = None
        self._widths: Optional[np.ndarray] = None
        self._scale: Optional[int] = None
        self._q_bound = 1
        self._has_clients: Optional[np.ndarray] = None
        # Gathers that depend only on the palette, cached per palette.
        self._pal_key: Optional[Tuple[int, ...]] = None
        self._pal: Optional[np.ndarray] = None
        self._pal_widths: Optional[np.ndarray] = None
        self._pal_weights: Optional[np.ndarray] = None
        # Committed-load cache, validated against the engine's channel
        # vector on every step and kept warm by :meth:`note_commit`.
        self._chan_arr: Optional[np.ndarray] = None
        self._loads_all: Optional[np.ndarray] = None
        self._edge_active: Optional[np.ndarray] = None

    def _check_scope(self, ap: int, what: str) -> None:
        """Reject a mover outside the configured shard scope."""
        if self.scope is not None and ap not in self.scope:
            raise AllocationError(
                f"{what} moves AP {self.engine._ap_ids[ap]!r} outside the "
                "configured shard scope"
            )

    # ------------------------------------------------------------------
    # Mirrors of the engine's interning state
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Refresh numpy mirrors after the engine interned new channels."""
        engine = self.engine
        n_ch = len(engine._channels)
        if n_ch != self._n_channels:
            if n_ch:
                self._weights = np.array(
                    engine._weight_rows, dtype=np.float64
                ).reshape(n_ch, n_ch)
                self._scale = _dyadic_scale(self._weights)
            else:
                self._weights = np.zeros((0, 0))
                self._scale = 1
            self._widths = np.array(engine._widths, dtype=np.int64)
            self._n_channels = n_ch
            self._pal_key = None
            self._loads_all = None  # shape follows the channel count
            if self._scale is not None:
                self.tables.adopt_scale(self._scale)
                scale = self.tables.scale
                assert scale is not None
                w_max = float(self._weights.max()) if self._weights.size else 0.0
                # No load can exceed every-neighbour-at-max-weight, so a
                # grid this wide never needs a bounds check per gather.
                self._q_bound = int(round(self._max_degree * w_max * scale)) + 1
                self.tables.ensure(2 * self._n_aps, self._q_bound)
        if self._has_clients is None:
            has = np.zeros(self._n_aps, dtype=bool)
            for ap in range(self._n_aps):
                clients = engine._clients_of[ap]
                if clients is None:
                    clients = engine._client_list(ap)
                has[ap] = bool(clients)
            self._has_clients = has

    def note_commit(self, ap: int, old_index: int, new_index: int) -> None:
        """Fold a committed channel switch into the cached load matrix.

        Optional fast path: after ``engine.commit_index(ap, new_index)``
        the caller may report the switch here so the next
        :meth:`step_block` reuses the committed-load cache instead of
        rebuilding it. Exact — the per-row delta ``w[:, new] - w[:, old]``
        is dyadic, so the updated rows equal a from-scratch rebuild bit
        for bit. Safe to omit: the cache is validated against the
        engine's committed channels and rebuilt on any mismatch.
        """
        loads = self._loads_all
        chan_arr = self._chan_arr
        if loads is None or chan_arr is None:
            return
        if old_index == new_index:
            return
        if old_index < 0 or chan_arr[ap] != old_index:
            self._loads_all = None  # out-of-band change: force rebuild
            return
        weights = self._weights
        assert weights is not None
        neighbours = self._edge_dst[self._indptr[ap] : self._indptr[ap + 1]]
        loads[neighbours] += weights[:, new_index] - weights[:, old_index]
        chan_arr[ap] = new_index

    # ------------------------------------------------------------------
    # Cell-grid gather
    # ------------------------------------------------------------------
    def _cells(self, slot: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Gather cell values for flat ``(slot, q)`` pairs, filling misses.

        Misses go through the engine's exact scalar
        :meth:`~repro.net.state.CompiledEvaluator._cell_value` (which
        also feeds the engine's own memo), so the grid only ever holds
        floats the scalar path would produce.
        """
        tables = self.tables
        grid = tables.grid
        if grid is None or grid.shape[1] < self._q_bound:
            q_cap = max(int(q.max()) + 1 if q.size else 1, self._q_bound)
            grid = tables.ensure(2 * self._n_aps, q_cap)
        values = grid[slot, q]
        miss = np.flatnonzero(np.isnan(values))
        if miss.size:
            engine = self.engine
            scale = tables.scale
            assert scale is not None
            stride = np.int64(grid.shape[1])
            keys = np.unique(slot[miss] * stride + q[miss])
            for key in keys.tolist():
                cell_slot, cell_q = divmod(int(key), int(stride))
                ap = cell_slot >> 1
                width = cell_slot & 1
                clients = engine._clients_of[ap]
                if clients is None:
                    clients = engine._client_list(ap)
                grid[cell_slot, cell_q] = engine._cell_value(
                    ap, width, cell_q / scale, clients
                )
            values = grid[slot, q]
        return values

    # ------------------------------------------------------------------
    # Greedy-step candidate blocks
    # ------------------------------------------------------------------
    def step_block(
        self,
        positions: Sequence[int],
        remaining: Sequence[int],
        palette_indices: Sequence[int],
    ) -> CandidateBlock:
        """Score all (remaining AP, palette channel) switches of one step.

        ``positions`` maps allocator positions to compiled AP indices;
        ``remaining`` lists the positions still eligible this round, in
        scan order; ``palette_indices`` are interned channel indices.
        The resulting block's column ``i * len(palette_indices) + j``
        holds the what-if per-AP throughput vector for moving
        ``remaining[i]`` to palette entry ``j`` — run it through
        :func:`accumulate_totals` for the candidate totals.
        """
        self._sync()
        engine = self.engine
        n = self._n_aps
        width = len(palette_indices)
        moving = np.fromiter(
            (positions[p] for p in remaining), dtype=np.int64, count=len(remaining)
        )
        outside = moving[~self._in_graph[moving]] if moving.size else moving
        if outside.size:
            raise AllocationError(
                f"AP {engine._ap_ids[int(outside[0])]!r} is not in the "
                "interference graph"
            )
        if self.scope is not None:
            for ap in moving.tolist():
                self._check_scope(int(ap), "step_block")
        chan = np.fromiter(engine._chan, dtype=np.int64, count=n)
        pal_key = tuple(palette_indices)
        if pal_key != self._pal_key:
            self._pal = np.asarray(palette_indices, dtype=np.int64)
            self._pal_key = pal_key
            if self._widths is not None:
                self._pal_widths = self._widths[self._pal]
            if self._weights is not None:
                self._pal_weights = np.ascontiguousarray(
                    self._weights[:, self._pal]
                )
        pal = self._pal
        assert pal is not None
        skip = (chan[moving][:, None] == pal[None, :]).ravel()
        if self._scale is None:
            return self._step_block_scalar(moving, chan, palette_indices, skip)
        weights = self._weights
        pal_widths = self._pal_widths
        pal_weights = self._pal_weights
        assert weights is not None
        assert pal_widths is not None and pal_weights is not None
        scale = self.tables.scale
        assert scale is not None

        # Committed per-(AP, channel) contention loads: counts of active
        # neighbours per channel, times the weight matrix. Exact for
        # dyadic weights in any summation order — and bit-equal to the
        # per-commit deltas of :meth:`note_commit`, so a cache validated
        # against the committed channel vector is reused across steps.
        n_ch = self._n_channels
        loads_all = self._loads_all
        if (
            loads_all is None
            or self._chan_arr is None
            or not np.array_equal(chan, self._chan_arr)
        ):
            active_edge = chan[self._edge_dst] >= 0
            src = self._edge_src[active_edge]
            dst_chan = chan[self._edge_dst[active_edge]]
            counts = (
                np.bincount(src * n_ch + dst_chan, minlength=n * n_ch)
                .reshape(n, n_ch)
                .astype(np.float64)
            )
            loads_all = counts @ weights.T  # [a, c]: load of a sitting on c
            self._loads_all = loads_all
            self._chan_arr = chan
            self._edge_active = active_edge
        edge_active = self._edge_active
        assert edge_active is not None

        k_total = len(remaining) * width
        matrix = np.broadcast_to(
            np.fromiter(engine._x, dtype=np.float64, count=n)[:, None],
            (n, k_total),
        ).copy()
        if not width:
            return CandidateBlock(skip=skip, width=width, matrix=matrix)
        cols = np.arange(k_total, dtype=np.int64).reshape(len(remaining), width)

        # Moving AP's own cell on each candidate channel (0.0 for a
        # clientless cell, exactly as the scalar path substitutes).
        rows = np.flatnonzero(self._has_clients[moving])
        movers_c = moving[rows]
        q_own = np.rint(
            loads_all[movers_c[:, None], pal[None, :]] * scale
        ).astype(np.int64)
        slot_own = (movers_c * 2)[:, None] + pal_widths[None, :]
        own_n = movers_c.size * width

        # Neighbours of each mover: incremental load update per edge,
        # identical (exactly) to the scalar engine's formula.
        moving_mask = np.zeros(n, dtype=bool)
        moving_mask[moving] = True
        keep = (
            moving_mask[self._edge_src]
            & edge_active
            & self._has_clients[self._edge_dst]
        )
        edge_src = self._edge_src[keep]
        edge_dst = self._edge_dst[keep]
        if edge_src.size:
            nbr_chan = chan[edge_dst]
            old_chan = chan[edge_src]
            old_weight = np.where(
                old_chan >= 0,
                weights[nbr_chan, np.maximum(old_chan, 0)],
                0.0,
            )
            base = loads_all[edge_dst, nbr_chan] - old_weight
            nbr_loads = base[:, None] + pal_weights[nbr_chan]
            q_nbr = np.rint(nbr_loads * scale).astype(np.int64).ravel()
            slot_nbr = np.repeat(
                edge_dst * 2 + self._widths[nbr_chan], width
            )
        else:
            q_nbr = np.empty(0, dtype=np.int64)
            slot_nbr = np.empty(0, dtype=np.int64)

        # One fused gather for every touched cell of the superstep.
        values = self._cells(
            np.concatenate((slot_own.ravel(), slot_nbr)),
            np.concatenate((q_own.ravel(), q_nbr)),
        )
        own_values = np.zeros((len(remaining), width))
        if own_n:
            own_values[rows] = values[:own_n].reshape(rows.size, width)
        matrix[np.repeat(moving, width), cols.ravel()] = own_values.ravel()
        if edge_src.size:
            position_of = np.empty(n, dtype=np.int64)
            position_of[moving] = np.arange(len(remaining), dtype=np.int64)
            edge_cols = cols[position_of[edge_src]]
            matrix[np.repeat(edge_dst, width), edge_cols.ravel()] = (
                values[own_n:]
            )
        return CandidateBlock(skip=skip, width=width, matrix=matrix)

    def _step_block_scalar(
        self,
        moving: np.ndarray,
        chan: np.ndarray,
        palette_indices: Sequence[int],
        skip: np.ndarray,
    ) -> CandidateBlock:
        """Non-dyadic weights: exact totals via scalar trials."""
        engine = self.engine
        width = len(palette_indices)
        totals = np.full(moving.size * width, np.nan)
        k = 0
        for ap in moving.tolist():
            current = int(chan[ap])
            for candidate in palette_indices:
                if candidate != current:
                    totals[k] = engine.trial_index(int(ap), int(candidate))
                k += 1
        return CandidateBlock(skip=skip, width=width, totals=totals)

    # ------------------------------------------------------------------
    # Association-move batches (the refinement local search)
    # ------------------------------------------------------------------
    def move_totals(
        self, moves: Sequence[Tuple[str, str]]
    ) -> np.ndarray:
        """Batched ``trial_move`` totals for ``(client_id, target_ap)`` pairs.

        The per-move touched-cell values come from the engine's exact
        :meth:`~repro.net.state.CompiledEvaluator.move_values` seam (at
        most two cells change per move); only the O(n_aps) substituted
        summation is batched, replayed in the scalar order by row-wise
        accumulation.
        """
        engine = self.engine
        n = self._n_aps
        k_total = len(moves)
        if self.scope is not None:
            for client_id, target_ap in moves:
                target = engine._ap_index.get(target_ap)
                if target is not None:
                    self._check_scope(target, "move_totals")
                client = engine._client_index.get(client_id)
                source = (
                    engine._assoc.get(client) if client is not None else None
                )
                if source is not None:
                    self._check_scope(source, "move_totals")
        matrix = np.broadcast_to(
            np.fromiter(engine._x, dtype=np.float64, count=n)[:, None],
            (n, k_total),
        ).copy()
        for k, (client_id, target_ap) in enumerate(moves):
            touched, values = engine.move_values(client_id, target_ap)
            for ap, value in zip(touched, values):
                matrix[ap, k] = value
        totals = np.zeros(k_total)
        for ap in range(n):
            totals += matrix[ap]
        return totals

    # ------------------------------------------------------------------
    # Stateless contention oracle (the Kauffmann baseline)
    # ------------------------------------------------------------------
    def contention_loads(
        self,
        ap_id: str,
        channels: Sequence[Channel],
        assignment: Optional[Mapping[str, Channel]] = None,
    ) -> np.ndarray:
        """Vector of ``contention_load`` values over many channels.

        Same semantics as the engine's scalar oracle — committed state
        by default, an explicit ``assignment`` for stateless what-ifs —
        with one weight-matrix gather instead of a Python loop per
        channel. Bit-identical (dyadic exactness; scalar fallback
        otherwise), so ``argmin`` selection matches the scalar ratchet.
        """
        engine = self.engine
        ap = engine._ap_index.get(ap_id)
        if ap is None or engine._nbr[ap] is None:
            raise AllocationError(
                f"AP {ap_id!r} is not in the interference graph"
            )
        neighbours = engine._nbr[ap]
        if assignment is None:
            chan = engine._chan
            neighbour_indices = [
                chan[other] for other in neighbours if chan[other] >= 0
            ]
        else:
            ap_ids = engine._ap_ids
            neighbour_indices = []
            for other in neighbours:
                channel = assignment.get(ap_ids[other])
                if channel is not None:
                    neighbour_indices.append(engine._intern(channel))
        row_indices = [engine._intern(channel) for channel in channels]
        self._sync()
        if self._scale is None:
            return np.array(
                [
                    engine.contention_load(ap_id, channel, assignment=assignment)
                    for channel in channels
                ]
            )
        if not neighbour_indices or not row_indices:
            return np.zeros(len(row_indices))
        assert self._weights is not None
        sub = self._weights[
            np.ix_(
                np.asarray(row_indices, dtype=np.int64),
                np.asarray(neighbour_indices, dtype=np.int64),
            )
        ]
        return sub.sum(axis=1)
