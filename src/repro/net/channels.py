"""Channels as colours: 20 MHz basics and 40 MHz composites.

Section 4.2 casts channel allocation as graph colouring where a bonded
40 MHz channel is a *composite colour* {c_i, c_j}: the basic colours c_i
and c_j do not conflict with each other, but each conflicts with the
composite built from them. A :class:`Channel` is one colour; a
:class:`ChannelPlan` is the palette available to the allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from ..errors import ChannelError
from ..phy.ofdm import OFDM_20MHZ, OFDM_40MHZ, OfdmParams

__all__ = ["Channel", "ChannelPlan", "FIVE_GHZ_20MHZ_CHANNELS"]

# The twelve 20 MHz channels of the 5 GHz band used in the paper's
# experiments ("we employ all the twelve 20MHz channels available in the
# 5GHz band").
FIVE_GHZ_20MHZ_CHANNELS: Tuple[int, ...] = (
    36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112,
)

# 802.11n bonds a primary with the adjacent secondary; in the 5 GHz plan
# the valid pairs are the consecutive (lower, upper) channel couples.
_DEFAULT_BONDED_PAIRS: Tuple[Tuple[int, int], ...] = (
    (36, 40), (44, 48), (52, 56), (60, 64), (100, 104), (108, 112),
)


@dataclass(frozen=True)
class Channel:
    """One assignable colour: a 20 MHz channel or a bonded 40 MHz pair.

    Attributes
    ----------
    primary:
        The 20 MHz channel number (also the control channel when bonded).
    secondary:
        The second 20 MHz constituent for a bonded channel, else ``None``.
    """

    primary: int
    secondary: Optional[int] = None

    def __post_init__(self) -> None:
        if self.secondary is not None and self.secondary == self.primary:
            raise ChannelError(
                f"cannot bond channel {self.primary} with itself"
            )

    @property
    def is_bonded(self) -> bool:
        """True for a composite (40 MHz) colour."""
        return self.secondary is not None

    @property
    def width_mhz(self) -> int:
        """Occupied bandwidth: 20 or 40 MHz."""
        return 40 if self.is_bonded else 20

    @property
    def params(self) -> OfdmParams:
        """The OFDM numerology used on this channel."""
        return OFDM_40MHZ if self.is_bonded else OFDM_20MHZ

    @property
    def constituents(self) -> FrozenSet[int]:
        """The 20 MHz channel numbers this colour occupies."""
        if self.secondary is None:
            return frozenset((self.primary,))
        return frozenset((self.primary, self.secondary))

    def conflicts_with(self, other: "Channel") -> bool:
        """Colour conflict: any shared 20 MHz spectrum.

        Two distinct basic colours never conflict; a composite conflicts
        with each of its constituents and with any overlapping composite.
        Every colour conflicts with itself.
        """
        if not isinstance(other, Channel):
            raise ChannelError(f"expected a Channel, got {other!r}")
        return bool(self.constituents & other.constituents)

    def primary_only(self) -> "Channel":
        """The 20 MHz fallback inside this colour.

        ACORN's opportunistic mode: an AP holding a 40 MHz allocation may
        "opt out from using CB and only employ the 20 MHz channel (one of
        the two assigned)" without changing interference on neighbours.
        """
        return Channel(self.primary)

    def __str__(self) -> str:
        if self.is_bonded:
            return f"{self.primary}+{self.secondary} (40 MHz)"
        return f"{self.primary} (20 MHz)"


class ChannelPlan:
    """The palette of colours available to the channel allocator.

    Parameters
    ----------
    channel_numbers:
        The 20 MHz channel numbers available (order defines "adjacency"
        for default bonding).
    bonded_pairs:
        The (lower, upper) couples that may be bonded into 40 MHz
        channels. Defaults to the standard 5 GHz couples restricted to
        the available channels; consecutive pairing is used for custom
        channel lists.
    """

    def __init__(
        self,
        channel_numbers: Sequence[int] = FIVE_GHZ_20MHZ_CHANNELS,
        bonded_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        numbers = tuple(channel_numbers)
        if not numbers:
            raise ChannelError("a channel plan needs at least one channel")
        if len(set(numbers)) != len(numbers):
            raise ChannelError(f"duplicate channel numbers in {numbers}")
        self._numbers = numbers
        if bonded_pairs is None:
            if set(numbers) <= set(FIVE_GHZ_20MHZ_CHANNELS):
                bonded_pairs = [
                    pair
                    for pair in _DEFAULT_BONDED_PAIRS
                    if pair[0] in numbers and pair[1] in numbers
                ]
            else:
                # Custom channel list: bond consecutive disjoint couples.
                bonded_pairs = [
                    (numbers[i], numbers[i + 1])
                    for i in range(0, len(numbers) - 1, 2)
                ]
        for low, high in bonded_pairs:
            if low not in numbers or high not in numbers:
                raise ChannelError(
                    f"bonded pair ({low}, {high}) uses channels outside the plan"
                )
        self._pairs = tuple(tuple(pair) for pair in bonded_pairs)

    # ------------------------------------------------------------------
    @property
    def channel_numbers(self) -> Tuple[int, ...]:
        """The available 20 MHz channel numbers."""
        return self._numbers

    @property
    def n_basic(self) -> int:
        """Number of 20 MHz channels in the plan."""
        return len(self._numbers)

    @property
    def bonded_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The (lower, upper) couples bonded into 40 MHz channels.

        Exposed so an equivalent plan can be reconstructed from plain
        numbers (e.g. by fleet workers receiving a compiled payload).
        """
        return self._pairs

    def channels_20(self) -> Tuple[Channel, ...]:
        """All basic (20 MHz) colours."""
        return tuple(Channel(n) for n in self._numbers)

    def channels_40(self) -> Tuple[Channel, ...]:
        """All composite (40 MHz) colours."""
        return tuple(Channel(low, high) for low, high in self._pairs)

    def all_channels(self) -> Tuple[Channel, ...]:
        """The full palette Ch: basic then composite colours."""
        return self.channels_20() + self.channels_40()

    def subset(self, n_basic: int) -> "ChannelPlan":
        """A plan with only the first ``n_basic`` 20 MHz channels.

        Used by the Fig 14 experiments (2, 4 and 6 orthogonal channels
        made available to three competing APs).
        """
        if not 1 <= n_basic <= len(self._numbers):
            raise ChannelError(
                f"cannot take {n_basic} of {len(self._numbers)} channels"
            )
        numbers = self._numbers[:n_basic]
        pairs = [
            pair
            for pair in self._pairs
            if pair[0] in numbers and pair[1] in numbers
        ]
        return ChannelPlan(numbers, pairs)

    def __len__(self) -> int:
        return len(self.all_channels())

    def __repr__(self) -> str:
        return (
            f"ChannelPlan({len(self._numbers)}x20MHz, "
            f"{len(self._pairs)}x40MHz)"
        )
