"""The interference graph (IG) and channel-conditioned contention.

Footnote 5 of the paper: "Two APs interfere with each other either if
they directly compete for the medium or if either competes with at least
one of the other AP's clients." The IG is *potential* interference — a
geometric/topological fact. Whether two APs actually contend also
depends on the channels assigned: edges only bind APs whose colours
conflict (:meth:`repro.net.channels.Channel.conflicts_with`).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Set

import networkx as nx
import numpy as np

from ..errors import AllocationError, TopologyError
from .channels import Channel
from .topology import Network

__all__ = [
    "DEFAULT_CS_THRESHOLD_DBM",
    "adjacency_arrays",
    "ap_hearing_columns",
    "ap_hearing_square",
    "build_interference_graph",
    "contenders",
    "graph_from_hearing",
    "max_degree",
]

# Carrier-sense threshold: a transmitter is "heard" (defers/collides)
# when its signal arrives above this power. -82 dBm is the 802.11
# preamble-detection level for 20 MHz.
DEFAULT_CS_THRESHOLD_DBM = -82.0


def _received_power_dbm(network: Network, ap_id: str, position) -> float:
    ap = network.ap(ap_id)
    if ap.position is None or position is None:
        raise TopologyError(
            f"AP {ap_id!r} or target lacks a position for propagation"
        )
    loss = network.config.path_loss.loss_db(
        network.distance(ap.position, position)
    )
    return ap.tx_power_dbm - loss


def build_interference_graph(
    network: Network,
    cs_threshold_dbm: float = DEFAULT_CS_THRESHOLD_DBM,
) -> nx.Graph:
    """The AP-level interference graph G(V, E).

    Explicitly declared conflicts (SNR-specified scenarios) take
    precedence. Otherwise, an edge (i, j) exists when either AP's signal
    reaches the other AP — or any of the other AP's *associated clients*
    — above the carrier-sense threshold (footnote 5).
    """
    graph = nx.Graph()
    graph.add_nodes_from(network.ap_ids)
    explicit = network.explicit_conflicts
    if explicit is not None:
        for pair in explicit:
            a, b = tuple(pair)
            graph.add_edge(a, b)
        return graph

    ap_ids = network.ap_ids
    for index, ap_i in enumerate(ap_ids):
        for ap_j in ap_ids[index + 1 :]:
            if _aps_interfere(network, ap_i, ap_j, cs_threshold_dbm):
                graph.add_edge(ap_i, ap_j)
    return graph


def _aps_interfere(
    network: Network, ap_i: str, ap_j: str, cs_threshold_dbm: float
) -> bool:
    """Footnote-5 test, symmetric in (i, j)."""
    position_i = network.ap(ap_i).position
    position_j = network.ap(ap_j).position
    if position_i is None or position_j is None:
        raise TopologyError(
            f"APs {ap_i!r}/{ap_j!r} lack positions; call "
            "Network.set_explicit_conflicts for SNR-specified scenarios"
        )
    # Direct AP-to-AP competition.
    if _received_power_dbm(network, ap_i, position_j) >= cs_threshold_dbm:
        return True
    if _received_power_dbm(network, ap_j, position_i) >= cs_threshold_dbm:
        return True
    # Competition through either AP's clients.
    for owner, other in ((ap_i, ap_j), (ap_j, ap_i)):
        for client_id in network.clients_of(owner):
            client_position = network.client(client_id).position
            if client_position is None:
                continue
            if (
                _received_power_dbm(network, other, client_position)
                >= cs_threshold_dbm
            ):
                return True
    return False


def ap_hearing_square(
    network: Network,
    cs_threshold_dbm: float = DEFAULT_CS_THRESHOLD_DBM,
) -> np.ndarray:
    """``hears[i, j]``: AP *i*'s signal reaches AP *j* above threshold.

    Scalar-for-scalar the same propagation math as
    :func:`build_interference_graph`, so boolean results match exactly.
    This matrix depends only on AP geometry, never on client churn — it
    is computed once and cached by ``CompiledNetwork.apply_churn``.
    """
    ap_ids = network.ap_ids
    n = len(ap_ids)
    hears = np.zeros((n, n), dtype=bool)
    positions = []
    for ap_id in ap_ids:
        position = network.ap(ap_id).position
        if position is None:
            raise TopologyError(
                f"AP {ap_id!r} lacks a position; call "
                "Network.set_explicit_conflicts for SNR-specified scenarios"
            )
        positions.append(position)
    for i, ap_i in enumerate(ap_ids):
        for j in range(n):
            if i == j:
                continue
            hears[i, j] = (
                _received_power_dbm(network, ap_i, positions[j])
                >= cs_threshold_dbm
            )
    return hears


def ap_hearing_columns(
    network: Network,
    client_ids: "Sequence[str]",
    cs_threshold_dbm: float = DEFAULT_CS_THRESHOLD_DBM,
) -> np.ndarray:
    """``hears[i, k]``: AP *i*'s signal reaches client *k* above threshold.

    Clients without a position yield all-``False`` columns (the fresh
    graph build skips them the same way). Columns are independent, so
    churn only ever recomputes the columns of arriving clients.
    """
    ap_ids = network.ap_ids
    hears = np.zeros((len(ap_ids), len(client_ids)), dtype=bool)
    for k, client_id in enumerate(client_ids):
        position = network.client(client_id).position
        if position is None:
            continue
        for i, ap_id in enumerate(ap_ids):
            hears[i, k] = (
                _received_power_dbm(network, ap_id, position)
                >= cs_threshold_dbm
            )
    return hears


def graph_from_hearing(
    ap_ids: "Sequence[str]",
    ap_hears_ap: np.ndarray,
    ap_hears_client: np.ndarray,
    association: np.ndarray,
) -> nx.Graph:
    """Assemble the footnote-5 graph from cached hearing matrices.

    ``association[i, k]`` marks client *k* associated with AP *i*. An
    edge (i, j) exists when either AP hears the other, or either AP is
    heard at one of the other's associated clients. Edges are inserted
    in the same i < j row-major order as the fresh double loop in
    :func:`build_interference_graph`, so ``graph.neighbors`` iteration —
    and therefore every CSR summation order downstream — is identical.
    """
    heard_at = association.astype(np.int64) @ ap_hears_client.T.astype(np.int64)
    via_clients = heard_at > 0
    edges = ap_hears_ap | ap_hears_ap.T | via_clients | via_clients.T
    np.fill_diagonal(edges, False)
    graph = nx.Graph()
    graph.add_nodes_from(ap_ids)
    rows, cols = np.nonzero(np.triu(edges, k=1))
    for i, j in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(ap_ids[i], ap_ids[j])
    return graph


def contenders(
    graph: nx.Graph,
    ap_id: str,
    assignment: Mapping[str, Channel],
) -> Set[str]:
    """con_a: the IG neighbours whose channel conflicts with AP a's.

    APs without an assigned channel are skipped (they are not
    transmitting yet).
    """
    if ap_id not in graph:
        raise AllocationError(f"AP {ap_id!r} is not in the interference graph")
    own = assignment.get(ap_id)
    if own is None:
        raise AllocationError(f"AP {ap_id!r} has no channel assigned")
    result: Set[str] = set()
    for neighbour in graph.neighbors(ap_id):
        other = assignment.get(neighbour)
        if other is not None and own.conflicts_with(other):
            result.add(neighbour)
    return result


def adjacency_arrays(graph: nx.Graph, ap_ids: "Sequence[str]"):
    """CSR-style adjacency of the IG over a fixed AP ordering.

    Returns ``(indptr, indices, in_graph)``: ``indices[indptr[i]:
    indptr[i + 1]]`` are the integer ids of AP ``i``'s neighbours, in
    ``graph.neighbors`` order (the same order the dict engine walks, so
    sequential load sums match bitwise). ``in_graph[i]`` is False for
    APs absent from the graph — the dict engine treats those as having
    no neighbourhood at all, which is distinct from an isolated node.
    """
    index = {ap_id: i for i, ap_id in enumerate(ap_ids)}
    indptr = np.zeros(len(ap_ids) + 1, dtype=np.int64)
    indices_list = []
    in_graph = np.zeros(len(ap_ids), dtype=bool)
    for i, ap_id in enumerate(ap_ids):
        if ap_id in graph:
            in_graph[i] = True
            for neighbour in graph.neighbors(ap_id):
                j = index.get(neighbour)
                if j is not None and j != i:
                    indices_list.append(j)
        indptr[i + 1] = len(indices_list)
    indices = np.asarray(indices_list, dtype=np.int64)
    return indptr, indices, in_graph


def max_degree(graph: nx.Graph) -> int:
    """Δ: the maximum node degree — drives the O(1/(Δ+1)) bound."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _, degree in graph.degree())
