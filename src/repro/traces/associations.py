"""Synthetic CRAWDAD-like association-duration traces.

The paper mines 3+ years of the CRAWDAD ``ilesansfil/wifidog`` dataset
(206 commercial APs) for user association durations, reporting a median
of ~31 minutes with more than 90 % of sessions under 40 minutes (Fig 9),
and from this picks the channel-allocation periodicity T = 30 min.

That dataset cannot ship offline, so we synthesise sessions from a
log-normal distribution calibrated to the two reported quantiles — the
standard model for WLAN session durations and sufficient for the only
use the paper makes of the data (choosing T).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from ..config import make_rng
from ..errors import ConfigurationError

__all__ = [
    "PAPER_MEDIAN_S",
    "PAPER_P90_S",
    "AssociationEvent",
    "AssociationTraceSummary",
    "recommended_period_s",
    "summarize_durations",
    "synthesize_association_durations",
    "synthesize_association_events",
]

# Quantiles reported in the paper's Fig 9 discussion.
PAPER_MEDIAN_S = 31 * 60.0
PAPER_P90_S = 40 * 60.0


def _lognormal_parameters(median_s: float, p90_s: float) -> "tuple[float, float]":
    """Solve (mu, sigma) of a log-normal from its median and 90th pctile."""
    if median_s <= 0 or p90_s <= median_s:
        raise ConfigurationError(
            f"need 0 < median < p90, got median={median_s}, p90={p90_s}"
        )
    mu = math.log(median_s)
    z90 = float(norm.ppf(0.9))
    sigma = (math.log(p90_s) - mu) / z90
    return mu, sigma


def synthesize_association_durations(
    n_sessions: int = 10_000,
    median_s: float = PAPER_MEDIAN_S,
    p90_s: float = PAPER_P90_S,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Draw association durations (seconds) matching the Fig 9 quantiles."""
    if n_sessions <= 0:
        raise ConfigurationError(f"n_sessions must be positive, got {n_sessions}")
    mu, sigma = _lognormal_parameters(median_s, p90_s)
    rng = make_rng(rng)
    return rng.lognormal(mean=mu, sigma=sigma, size=n_sessions)


@dataclass(frozen=True)
class AssociationEvent:
    """One synthetic session: who arrives, when, and for how long."""

    arrival_s: float
    duration_s: float
    client_id: str

    @property
    def departure_s(self) -> float:
        """Absolute departure time of the session."""
        return self.arrival_s + self.duration_s


def synthesize_association_events(
    horizon_s: float,
    arrival_rate_per_s: float,
    median_s: float = PAPER_MEDIAN_S,
    p90_s: float = PAPER_P90_S,
    rng: "np.random.Generator | int | None" = None,
    client_prefix: str = "u",
):
    """Yield ``(arrival, duration, client_id)`` session events directly.

    A seeded generator over a Poisson arrival process (exponential
    inter-arrivals at ``arrival_rate_per_s``) with log-normal session
    durations calibrated to the Fig 9 quantiles — the event stream the
    timeline simulator replays, so callers no longer re-derive events
    from :func:`synthesize_association_durations` samples. Events are
    yielded in arrival order until the arrival clock passes
    ``horizon_s``; client ids are ``{prefix}00000``, ``{prefix}00001``…
    in arrival order, so the stream is fully reproducible from the seed.
    """
    if horizon_s <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon_s}")
    if arrival_rate_per_s <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive, got {arrival_rate_per_s}"
        )
    # Validate eagerly, then delegate to an inner generator — a bad
    # horizon/rate/quantile should fail at the call site, not on the
    # first next().
    mu, sigma = _lognormal_parameters(median_s, p90_s)
    rng = make_rng(rng)

    def events():
        clock = 0.0
        sequence = 0
        while True:
            clock += float(rng.exponential(1.0 / arrival_rate_per_s))
            if clock >= horizon_s:
                return
            yield AssociationEvent(
                arrival_s=clock,
                duration_s=float(rng.lognormal(mean=mu, sigma=sigma)),
                client_id=f"{client_prefix}{sequence:05d}",
            )
            sequence += 1

    return events()


@dataclass(frozen=True)
class AssociationTraceSummary:
    """Quantile summary of a duration sample."""

    n_sessions: int
    median_s: float
    p90_s: float
    mean_s: float

    @property
    def median_minutes(self) -> float:
        """Median session duration in minutes (the paper quotes ~31)."""
        return self.median_s / 60.0


def summarize_durations(durations_s: np.ndarray) -> AssociationTraceSummary:
    """Summary statistics of a duration sample."""
    durations_s = np.asarray(durations_s, dtype=float)
    if durations_s.size == 0:
        raise ConfigurationError("empty duration sample")
    if np.any(durations_s < 0):
        raise ConfigurationError("durations must be non-negative")
    return AssociationTraceSummary(
        n_sessions=int(durations_s.size),
        median_s=float(np.median(durations_s)),
        p90_s=float(np.percentile(durations_s, 90)),
        mean_s=float(np.mean(durations_s)),
    )


def recommended_period_s(
    durations_s: np.ndarray, granularity_s: float = 5 * 60.0
) -> float:
    """The allocation periodicity T suggested by a duration trace.

    The paper runs channel allocation every 30 minutes "based on these
    data" — i.e. the median association duration rounded to a practical
    granularity.
    """
    if granularity_s <= 0:
        raise ConfigurationError(
            f"granularity must be positive, got {granularity_s}"
        )
    summary = summarize_durations(durations_s)
    periods = max(1, round(summary.median_s / granularity_s))
    return periods * granularity_s
