"""Workload traces: synthetic association-duration sessions (Fig 9)."""

from .associations import (
    AssociationEvent,
    AssociationTraceSummary,
    recommended_period_s,
    summarize_durations,
    synthesize_association_durations,
    synthesize_association_events,
)

__all__ = [
    "AssociationEvent",
    "AssociationTraceSummary",
    "recommended_period_s",
    "summarize_durations",
    "synthesize_association_durations",
    "synthesize_association_events",
]
