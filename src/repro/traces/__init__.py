"""Workload traces: synthetic association-duration sessions (Fig 9)."""

from .associations import (
    AssociationTraceSummary,
    recommended_period_s,
    summarize_durations,
    synthesize_association_durations,
)

__all__ = [
    "synthesize_association_durations",
    "summarize_durations",
    "AssociationTraceSummary",
    "recommended_period_s",
]
