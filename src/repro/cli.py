"""Command-line interface for the ACORN reproduction.

Usage (via ``python -m repro``):

* ``scenario topology1|topology2|dense|random`` — configure a scenario
  with ACORN and the "[17]" baseline, print per-AP throughputs.
* ``mobility --direction away|toward`` — the Fig 13 mobility trace.
* ``transitions`` — the Table 1 σ = 2 transition SNRs.
* ``trace`` — the Fig 9 association-duration statistics and the
  derived allocation periodicity.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACORN (CoNEXT 2010) reproduction experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser(
        "scenario", help="configure a WLAN scenario with ACORN vs [17]"
    )
    scenario.add_argument(
        "name",
        choices=("topology1", "topology2", "dense", "random", "office"),
        help="which deployment to configure",
    )
    scenario.add_argument("--seed", type=int, default=7, help="ACORN RNG seed")
    scenario.add_argument(
        "--traffic",
        choices=("udp", "tcp"),
        default="udp",
        help="traffic model used for throughput accounting",
    )
    scenario.add_argument(
        "--refine",
        action="store_true",
        help="run the association-refinement extension after configuring",
    )

    mobility = subparsers.add_parser(
        "mobility", help="run the Fig 13 pedestrian-mobility trace"
    )
    mobility.add_argument(
        "--direction", choices=("away", "toward"), default="away"
    )
    mobility.add_argument("--duration", type=float, default=50.0)

    subparsers.add_parser(
        "transitions", help="print the Table 1 sigma=2 transition SNRs"
    )

    trace = subparsers.add_parser(
        "trace", help="association-duration statistics (Fig 9)"
    )
    trace.add_argument("--sessions", type=int, default=20_000)
    trace.add_argument("--seed", type=int, default=2010)

    longrun = subparsers.add_parser(
        "longrun", help="churned long-run operation at a given period"
    )
    longrun.add_argument("--hours", type=float, default=4.0)
    longrun.add_argument(
        "--period-min", type=float, default=30.0, dest="period_min"
    )
    longrun.add_argument("--seed", type=int, default=3)
    return parser


def _build_scenario(name: str):
    from .sim.buildings import office_floor
    from .sim.scenario import dense_triangle, random_enterprise, topology1, topology2

    builders = {
        "topology1": topology1,
        "topology2": topology2,
        "dense": dense_triangle,
        "random": lambda: random_enterprise(n_aps=5, n_clients=12, seed=11),
        "office": lambda: office_floor(
            rooms_x=8, rooms_y=3, clients_per_room=1, n_aps=2, seed=4
        ),
    }
    return builders[name]


def _run_scenario(args: argparse.Namespace) -> int:
    from . import Acorn
    from .baselines import KauffmannController
    from .net import ThroughputModel
    from .sim.traffic import TcpTraffic

    builder = _build_scenario(args.name)

    def make_model():
        if args.traffic == "tcp":
            return ThroughputModel(traffic=TcpTraffic())
        return ThroughputModel()

    acorn_scenario = builder()
    acorn = Acorn(
        acorn_scenario.network, acorn_scenario.plan, make_model(), seed=args.seed
    )
    acorn_result = acorn.configure(
        acorn_scenario.client_order, refine=getattr(args, "refine", False)
    )

    baseline_scenario = builder()
    baseline = KauffmannController(
        baseline_scenario.network, baseline_scenario.plan, make_model()
    )
    baseline_result = baseline.configure(baseline_scenario.client_order)

    rows = []
    for ap_id in sorted(acorn_result.report.per_ap_mbps):
        rows.append(
            [
                ap_id,
                str(acorn_result.report.assignment[ap_id]),
                acorn_result.report.per_ap_mbps[ap_id],
                baseline_result.report.per_ap_mbps[ap_id],
            ]
        )
    rows.append(
        ["TOTAL", "", acorn_result.total_mbps, baseline_result.total_mbps]
    )
    print(
        render_table(
            ["AP", "ACORN channel", "ACORN (Mbps)", "[17] (Mbps)"],
            rows,
            float_format=".1f",
            title=f"{args.name} ({args.traffic.upper()} traffic, seed {args.seed})",
        )
    )
    return 0


def _run_mobility(args: argparse.Namespace) -> int:
    from .sim.mobility import run_mobility_experiment

    trace = run_mobility_experiment(args.direction, duration_s=args.duration)
    reference = "40 MHz" if args.direction == "away" else "20 MHz"
    rows = [
        [
            trace.times_s[index],
            trace.mobile_snr20_db[index],
            trace.acorn_width_mhz[index],
            trace.acorn_mbps[index],
            trace.fixed_mbps[index],
        ]
        for index in range(0, len(trace.times_s), max(1, len(trace.times_s) // 12))
    ]
    print(
        render_table(
            ["t (s)", "SNR (dB)", "width", "ACORN (Mbps)", f"fixed {reference}"],
            rows,
            float_format=".1f",
            title=f"Mobility ({args.direction}), ACORN vs fixed {reference}",
        )
    )
    if trace.switch_time_s is not None:
        print(
            f"switch at t = {trace.switch_time_s:.0f} s; post-switch gain "
            f"{trace.post_switch_gain():.1f}x"
        )
    else:
        print("no width switch occurred")
    from .analysis.plots import ascii_line_chart

    print()
    print(
        ascii_line_chart(
            trace.times_s,
            trace.acorn_mbps,
            title="ACORN cell throughput over the walk",
            y_label="Mbps",
        )
    )
    return 0


def _run_transitions(args: argparse.Namespace) -> int:
    from .link.quality import transition_snr_db
    from .phy.modulation import QAM16, QAM64, QPSK

    rows = []
    for label, modulation, rate in (
        ("QPSK 3/4", QPSK, 3 / 4),
        ("16QAM 3/4", QAM16, 3 / 4),
        ("64QAM 3/4", QAM64, 3 / 4),
        ("64QAM 5/6", QAM64, 5 / 6),
    ):
        rows.append([label, transition_snr_db(modulation, rate)])
    print(
        render_table(
            ["modcod", "sigma=2 boundary (dB)"],
            rows,
            float_format=".1f",
            title="Table 1 — width-transition SNRs (CB hurts below the boundary)",
        )
    )
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    from .traces.associations import (
        recommended_period_s,
        summarize_durations,
        synthesize_association_durations,
    )

    durations = synthesize_association_durations(args.sessions, rng=args.seed)
    summary = summarize_durations(durations)
    print(
        render_table(
            ["statistic", "value"],
            [
                ["sessions", summary.n_sessions],
                ["median (min)", summary.median_s / 60.0],
                ["90th percentile (min)", summary.p90_s / 60.0],
                ["mean (min)", summary.mean_s / 60.0],
                ["recommended T (min)", recommended_period_s(durations) / 60.0],
            ],
            float_format=".1f",
            title="Association durations (synthetic CRAWDAD, Fig 9)",
        )
    )
    return 0


def _run_longrun(args: argparse.Namespace) -> int:
    from .net import ChannelPlan, Network
    from .sim.longrun import ChurnConfig, run_long_run

    network = Network()
    for index in range(4):
        network.add_ap(f"AP{index + 1}")
    network.set_explicit_conflicts(
        [("AP1", "AP2"), ("AP2", "AP3"), ("AP3", "AP4")]
    )
    config = ChurnConfig(
        duration_s=args.hours * 3600.0,
        period_s=args.period_min * 60.0,
        seed=args.seed,
    )
    result = run_long_run(network, ChannelPlan().subset(6), config)
    print(
        render_table(
            ["metric", "value"],
            [
                ["duration (h)", args.hours],
                ["re-allocation period (min)", args.period_min],
                ["mean throughput (Mbps)", result.mean_throughput_mbps],
                ["peak throughput (Mbps)", result.peak_throughput_mbps],
                ["client arrivals", result.n_arrivals],
                ["client departures", result.n_departures],
                ["re-allocations", result.n_reallocations],
                ["switch downtime (s)", result.downtime_s],
            ],
            float_format=".1f",
            title="Long-run churned operation",
        )
    )
    return 0


_HANDLERS = {
    "scenario": _run_scenario,
    "mobility": _run_mobility,
    "transitions": _run_transitions,
    "trace": _run_trace,
    "longrun": _run_longrun,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
