"""Command-line interface for the ACORN reproduction.

Usage (via ``python -m repro``):

* ``scenario <name>`` — configure a registered scenario with ACORN and
  the "[17]" baseline, print per-AP throughputs (names resolve through
  :data:`repro.sim.scenario.SCENARIOS`).
* ``mobility --direction away|toward`` — the Fig 13 mobility trace.
* ``transitions`` — the Table 1 σ = 2 transition SNRs.
* ``trace`` — the Fig 9 association-duration statistics and the
  derived allocation periodicity; ``trace <journal>`` instead renders
  the merged :mod:`repro.obs` profile of a recorded sweep (text or
  ``--format json``).
* ``sweep`` — a multi-cell (scenario × seed × algorithm × traffic)
  evaluation sweep via :mod:`repro.fleet`, with ``--workers``,
  ``--timeout``, a JSONL checkpoint journal (``--out``) and
  ``--resume``. ``--profile`` traces every job and the driver and
  prints the merged span/counter report (``scenario --profile``
  does the same for a single configuration run).
* ``lint`` — the :mod:`repro.lint` static invariant checker (per-file
  rules RL001 determinism, RL002 units, RL003 errors, ..., and the
  project-wide flow rules RL101–RL104) over the given paths; exit 0
  clean, 1 findings, 2 internal error. ``--format json`` emits a
  machine-readable report, ``--list-rules`` the rule catalogue,
  ``--changed [REF]`` restricts to git-changed files plus their
  reverse importers, ``--no-cache`` bypasses the incremental cache,
  ``--timings`` prints the per-rule timing table, and
  ``--explain RLxxx`` prints each finding's full call chain.

Any :class:`~repro.errors.ReproError` escaping a subcommand is reported
as a one-line message on stderr with exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.tables import render_table
from .errors import ReproError
from .sim.scenario import scenario_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACORN (CoNEXT 2010) reproduction experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser(
        "scenario", help="configure a WLAN scenario with ACORN vs [17]"
    )
    scenario.add_argument(
        "name",
        choices=scenario_names(),
        help="which registered deployment to configure",
    )
    scenario.add_argument("--seed", type=int, default=7, help="ACORN RNG seed")
    scenario.add_argument(
        "--scenario-seed",
        type=int,
        default=None,
        dest="scenario_seed",
        help="seed for the scenario builder (only for seeded factories)",
    )
    scenario.add_argument(
        "--traffic",
        choices=("udp", "tcp"),
        default="udp",
        help="traffic model used for throughput accounting",
    )
    scenario.add_argument(
        "--refine",
        action="store_true",
        help="run the association-refinement extension after configuring",
    )
    scenario.add_argument(
        "--profile",
        action="store_true",
        help="trace the run (repro.obs) and print the span/counter report",
    )

    mobility = subparsers.add_parser(
        "mobility", help="run the Fig 13 pedestrian-mobility trace"
    )
    mobility.add_argument(
        "--direction", choices=("away", "toward"), default="away"
    )
    mobility.add_argument("--duration", type=float, default=50.0)

    subparsers.add_parser(
        "transitions", help="print the Table 1 sigma=2 transition SNRs"
    )

    trace = subparsers.add_parser(
        "trace",
        help=(
            "association-duration statistics (Fig 9), or — given a sweep "
            "journal — the merged repro.obs profile of that run"
        ),
    )
    trace.add_argument(
        "run",
        nargs="?",
        default=None,
        help="sweep journal (from `sweep --out`) to render a trace report for",
    )
    trace.add_argument("--sessions", type=int, default=20_000)
    trace.add_argument("--seed", type=int, default=2010)
    trace.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="trace-report format (only with a journal argument)",
    )

    longrun = subparsers.add_parser(
        "longrun", help="churned long-run operation at a given period"
    )
    longrun.add_argument("--hours", type=float, default=4.0)
    longrun.add_argument(
        "--period-min", type=float, default=30.0, dest="period_min"
    )
    longrun.add_argument("--seed", type=int, default=3)

    timeline = subparsers.add_parser(
        "timeline",
        help=(
            "event-driven campus churn replay with incremental "
            "recompilation (repro.sim.timeline)"
        ),
    )
    timeline.add_argument(
        "--aps", type=int, default=25, help="campus grid size in APs"
    )
    timeline.add_argument(
        "--hours", type=float, default=2.0, help="simulated horizon"
    )
    timeline.add_argument(
        "--rate-per-min",
        type=float,
        default=0.5,
        dest="rate_per_min",
        help="mean client arrivals per minute",
    )
    timeline.add_argument(
        "--period-min",
        type=float,
        default=30.0,
        dest="period_min",
        help="Algorithm 2 re-run period T in minutes",
    )
    timeline.add_argument(
        "--every-arrivals",
        type=int,
        default=0,
        dest="every_arrivals",
        help="also re-run Algorithm 2 every N admissions (0 = off)",
    )
    timeline.add_argument("--channels", type=int, default=4)
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument(
        "--scenario",
        choices=scenario_names(),
        default=None,
        help=(
            "replay churn over a registered scenario instead of the "
            "synthetic campus grid (runs the scenario's invariant checks)"
        ),
    )
    timeline.add_argument(
        "--enforce-checks",
        action="store_true",
        dest="enforce_checks",
        help="exit 1 when any scenario invariant check is violated",
    )
    timeline.add_argument(
        "--profile",
        action="store_true",
        help="trace the replay and print the repro.obs report",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a scenario x seed x algorithm sweep (repro.fleet)",
    )
    sweep.add_argument(
        "--scenario",
        action="append",
        choices=scenario_names(),
        dest="scenarios",
        help="scenario to include (repeatable; default: random)",
    )
    sweep.add_argument(
        "--n-seeds",
        type=int,
        default=5,
        dest="n_seeds",
        help="number of consecutive seeds per scenario",
    )
    sweep.add_argument(
        "--seed-base",
        type=int,
        default=0,
        dest="seed_base",
        help="first seed of the grid axis",
    )
    sweep.add_argument(
        "--algorithms",
        default="acorn,kauffmann",
        help="comma-separated algorithm names (see repro.fleet)",
    )
    sweep.add_argument(
        "--traffic",
        choices=("udp", "tcp", "both"),
        default="udp",
        help="traffic model axis",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = in-process serial)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts for timed-out/crashed jobs",
    )
    sweep.add_argument(
        "--out",
        default=None,
        help="JSONL checkpoint journal path (enables --resume)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reload completed jobs from the journal instead of rerunning",
    )
    sweep.add_argument(
        "--entropy",
        type=int,
        default=2010,
        help="root entropy for the per-job seed streams",
    )
    sweep.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress lines",
    )
    sweep.add_argument(
        "--enforce-checks",
        action="store_true",
        dest="enforce_checks",
        help="exit 1 when any scenario invariant check is violated",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help=(
            "trace every job (payloads land in the --out journal) and "
            "print the merged span/counter report"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run the shard-routed asyncio controller front-end "
            "(repro.service)"
        ),
    )
    serve.add_argument(
        "--aps", type=int, default=24, help="campus grid size in APs"
    )
    serve.add_argument(
        "--clients", type=int, default=60, help="scripted client count"
    )
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--self-test",
        action="store_true",
        dest="self_test",
        help=(
            "run the scripted concurrent request mix once and print the "
            "response fingerprint instead of serving TCP"
        ),
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the reprolint static invariant checker (repro.lint)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="report format: compiler-style text or a JSON document",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="ignore and do not write the .reprolint-cache.json cache",
    )
    lint.add_argument(
        "--explain",
        default=None,
        metavar="RLxxx",
        help=(
            "after linting, print each finding of the given rule with its "
            "full file:line call chain"
        ),
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "lint only files changed vs the given git ref (default HEAD) "
            "plus their reverse import dependencies"
        ),
    )
    lint.add_argument(
        "--timings",
        action="store_true",
        help="print a per-rule wall-time table after the report",
    )
    return parser


def _build_scenario(name: str, scenario_seed: "Optional[int]" = None):
    from .sim.scenario import make_scenario

    kwargs = {} if scenario_seed is None else {"seed": scenario_seed}
    return lambda: make_scenario(name, **kwargs)


def _run_scenario(args: argparse.Namespace) -> int:
    from . import Acorn
    from .baselines import KauffmannController
    from .net import ThroughputModel
    from .obs import Tracer, activate, render_trace_text
    from .sim.traffic import TcpTraffic

    builder = _build_scenario(args.name, getattr(args, "scenario_seed", None))

    def make_model():
        if args.traffic == "tcp":
            return ThroughputModel(traffic=TcpTraffic())
        return ThroughputModel()

    profile = getattr(args, "profile", False)
    tracer = Tracer() if profile else None

    def _configure_both():
        acorn_scenario = builder()
        acorn = Acorn(
            acorn_scenario.network,
            acorn_scenario.plan,
            make_model(),
            seed=args.seed,
        )
        acorn_result = acorn.configure(
            acorn_scenario.client_order, refine=getattr(args, "refine", False)
        )
        baseline_scenario = builder()
        baseline = KauffmannController(
            baseline_scenario.network, baseline_scenario.plan, make_model()
        )
        baseline_result = baseline.configure(baseline_scenario.client_order)
        return acorn_result, baseline_result

    if tracer is not None:
        with activate(tracer):
            acorn_result, baseline_result = _configure_both()
    else:
        acorn_result, baseline_result = _configure_both()

    rows = []
    for ap_id in sorted(acorn_result.report.per_ap_mbps):
        rows.append(
            [
                ap_id,
                str(acorn_result.report.assignment[ap_id]),
                acorn_result.report.per_ap_mbps[ap_id],
                baseline_result.report.per_ap_mbps[ap_id],
            ]
        )
    rows.append(
        ["TOTAL", "", acorn_result.total_mbps, baseline_result.total_mbps]
    )
    print(
        render_table(
            ["AP", "ACORN channel", "ACORN (Mbps)", "[17] (Mbps)"],
            rows,
            float_format=".1f",
            title=f"{args.name} ({args.traffic.upper()} traffic, seed {args.seed})",
        )
    )
    if tracer is not None:
        print()
        print(
            render_trace_text(
                tracer.to_payload(), title=f"Profile of scenario {args.name}"
            )
        )
    return 0


def _run_mobility(args: argparse.Namespace) -> int:
    from .sim.mobility import run_mobility_experiment

    trace = run_mobility_experiment(args.direction, duration_s=args.duration)
    reference = "40 MHz" if args.direction == "away" else "20 MHz"
    rows = [
        [
            trace.times_s[index],
            trace.mobile_snr20_db[index],
            trace.acorn_width_mhz[index],
            trace.acorn_mbps[index],
            trace.fixed_mbps[index],
        ]
        for index in range(0, len(trace.times_s), max(1, len(trace.times_s) // 12))
    ]
    print(
        render_table(
            ["t (s)", "SNR (dB)", "width", "ACORN (Mbps)", f"fixed {reference}"],
            rows,
            float_format=".1f",
            title=f"Mobility ({args.direction}), ACORN vs fixed {reference}",
        )
    )
    if trace.switch_time_s is not None:
        print(
            f"switch at t = {trace.switch_time_s:.0f} s; post-switch gain "
            f"{trace.post_switch_gain():.1f}x"
        )
    else:
        print("no width switch occurred")
    from .analysis.plots import ascii_line_chart

    print()
    print(
        ascii_line_chart(
            trace.times_s,
            trace.acorn_mbps,
            title="ACORN cell throughput over the walk",
            y_label="Mbps",
        )
    )
    return 0


def _run_transitions(args: argparse.Namespace) -> int:
    from .link.quality import transition_snr_db
    from .phy.modulation import QAM16, QAM64, QPSK

    rows = []
    for label, modulation, rate in (
        ("QPSK 3/4", QPSK, 3 / 4),
        ("16QAM 3/4", QAM16, 3 / 4),
        ("64QAM 3/4", QAM64, 3 / 4),
        ("64QAM 5/6", QAM64, 5 / 6),
    ):
        rows.append([label, transition_snr_db(modulation, rate)])
    print(
        render_table(
            ["modcod", "sigma=2 boundary (dB)"],
            rows,
            float_format=".1f",
            title="Table 1 — width-transition SNRs (CB hurts below the boundary)",
        )
    )
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    if getattr(args, "run", None) is not None:
        from .obs import trace_report

        print(trace_report(args.run, fmt=args.format))
        return 0

    from .traces.associations import (
        recommended_period_s,
        summarize_durations,
        synthesize_association_durations,
    )

    durations = synthesize_association_durations(args.sessions, rng=args.seed)
    summary = summarize_durations(durations)
    print(
        render_table(
            ["statistic", "value"],
            [
                ["sessions", summary.n_sessions],
                ["median (min)", summary.median_s / 60.0],
                ["90th percentile (min)", summary.p90_s / 60.0],
                ["mean (min)", summary.mean_s / 60.0],
                ["recommended T (min)", recommended_period_s(durations) / 60.0],
            ],
            float_format=".1f",
            title="Association durations (synthetic CRAWDAD, Fig 9)",
        )
    )
    return 0


def _run_longrun(args: argparse.Namespace) -> int:
    from .net import ChannelPlan, Network
    from .sim.longrun import ChurnConfig, run_long_run

    network = Network()
    for index in range(4):
        network.add_ap(f"AP{index + 1}")
    network.set_explicit_conflicts(
        [("AP1", "AP2"), ("AP2", "AP3"), ("AP3", "AP4")]
    )
    config = ChurnConfig(
        duration_s=args.hours * 3600.0,
        period_s=args.period_min * 60.0,
        seed=args.seed,
    )
    result = run_long_run(network, ChannelPlan().subset(6), config)
    print(
        render_table(
            ["metric", "value"],
            [
                ["duration (h)", args.hours],
                ["re-allocation period (min)", args.period_min],
                ["mean throughput (Mbps)", result.mean_throughput_mbps],
                ["peak throughput (Mbps)", result.peak_throughput_mbps],
                ["client arrivals", result.n_arrivals],
                ["client departures", result.n_departures],
                ["re-allocations", result.n_reallocations],
                ["switch downtime (s)", result.downtime_s],
            ],
            float_format=".1f",
            title="Long-run churned operation",
        )
    )
    return 0


def _timeline_scenario_case(args: argparse.Namespace):
    """Resolve ``timeline --scenario``: (network, plan, factory, checks)."""
    from .sim.scenario import make_scenario, scenario_accepts
    from .sim.timeline import place_client_random_links, place_client_uniform

    kwargs = (
        {"seed": args.seed} if scenario_accepts(args.scenario, "seed") else {}
    )
    built = make_scenario(args.scenario, **kwargs)
    network = built.network
    geometric = all(
        network.ap(ap_id).position is not None for ap_id in network.ap_ids
    )
    factory = place_client_uniform if geometric else place_client_random_links
    return built, network, built.plan, factory


def _timeline_result_checks(built, network, result):
    """Run the scenario's result checks on end-of-horizon metrics."""
    from .analysis.fairness import throughput_fairness_report
    from .net import WeightedThroughputModel, build_interference_graph
    from .sim.checks import evaluate_result_checks

    model = WeightedThroughputModel()
    report = model.evaluate(network, build_interference_graph(network))
    fairness = throughput_fairness_report(report.per_ap_mbps.values())
    metrics = {
        "total_mbps": float(fairness["total"]),
        "jain": float(fairness["jain"]),
        "pf_utility": float(fairness["pf_utility"]),
        "min_ap_mbps": float(fairness["min"]),
        "max_ap_mbps": float(fairness["max"]),
        "mean_mbps": float(result.mean_throughput_mbps),
    }
    return evaluate_result_checks(getattr(built, "checks", ()), metrics)


def _run_timeline(args: argparse.Namespace) -> int:
    from .net import ChannelPlan
    from .sim.timeline import TimelineConfig, campus_network, run_timeline

    check_rows = []
    if args.scenario is not None:
        from .sim.checks import evaluate_network_checks

        built, network, plan, client_factory = _timeline_scenario_case(args)
        check_rows.extend(evaluate_network_checks(built))
    else:
        built = None
        network = campus_network(n_aps=args.aps, seed=args.seed)
        plan = ChannelPlan().subset(args.channels)
        client_factory = None
    config = TimelineConfig(
        horizon_s=args.hours * 3600.0,
        arrival_rate_per_s=args.rate_per_min / 60.0,
        period_s=args.period_min * 60.0,
        allocate_every_arrivals=args.every_arrivals,
        seed=args.seed,
    )
    timeline_kwargs = (
        {"client_factory": client_factory} if client_factory is not None else {}
    )
    if args.profile:
        from .obs import Tracer, activate, render_trace_text

        tracer = Tracer()
        with activate(tracer):
            result = run_timeline(network, plan, config, **timeline_kwargs)
        trace_text = render_trace_text(
            tracer.to_payload(), title="Timeline profile"
        )
    else:
        result = run_timeline(network, plan, config, **timeline_kwargs)
        trace_text = None
    if built is not None:
        check_rows.extend(_timeline_result_checks(built, network, result))
    print(
        render_table(
            ["metric", "value"],
            [
                ["APs", len(network.ap_ids)],
                ["horizon (h)", args.hours],
                ["re-allocation period (min)", args.period_min],
                ["events processed", result.n_events],
                ["arrivals / departures", f"{result.n_arrivals} / {result.n_departures}"],
                ["rejected arrivals", result.n_rejected],
                ["peak concurrent clients", result.peak_clients],
                ["reconfiguration epochs", result.n_epochs],
                ["mean throughput (Mbps)", result.mean_throughput_mbps],
                ["switch downtime (s)", result.downtime_s],
            ],
            float_format=".1f",
            title="Campus timeline replay",
        )
    )
    if trace_text is not None:
        print()
        print(trace_text)
    violated = [row for row in check_rows if not row.passed]
    if check_rows:
        print()
        print(
            render_table(
                ["check", "verdict", "detail"],
                [
                    [row.name, "pass" if row.passed else "FAIL", row.detail]
                    for row in check_rows
                ],
                title=f"Invariant checks ({args.scenario})",
            )
        )
        print(
            f"checks: {len(check_rows) - len(violated)}/{len(check_rows)} passed"
        )
    if violated and args.enforce_checks:
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .net import ChannelPlan, WeightedThroughputModel
    from .service import AcornService, run_self_test, serve_tcp
    from .service.server import self_test_network

    if args.self_test:
        responses, fingerprint = run_self_test(
            n_aps=args.aps, n_clients=args.clients, seed=args.seed
        )
        served = sum(1 for r in responses if r.get("ok"))
        print(
            render_table(
                ["metric", "value"],
                [
                    ["APs", args.aps],
                    ["scripted clients", args.clients],
                    ["responses", len(responses)],
                    ["ok responses", served],
                ],
                title="Service self-test",
            )
        )
        print(f"fingerprint: {fingerprint}")
        return 0

    network, _ = self_test_network(args.aps, args.clients, args.seed)

    async def _serve() -> None:
        service = AcornService(
            network, ChannelPlan(), WeightedThroughputModel(), seed=args.seed
        )
        boot = await service.start(configure=True)
        server = await serve_tcp(service, host=args.host, port=args.port)
        bound = server.sockets[0].getsockname()
        print(
            f"serving {args.aps} APs in {boot['n_shards']} shards "
            f"on {bound[0]}:{bound[1]}"
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from .fleet import SweepSpec, run_sweep

    scenarios = tuple(args.scenarios) if args.scenarios else ("random",)
    traffic = ("udp", "tcp") if args.traffic == "both" else (args.traffic,)
    spec = SweepSpec(
        scenarios=scenarios,
        seeds=tuple(range(args.seed_base, args.seed_base + args.n_seeds)),
        algorithms=tuple(
            name.strip() for name in args.algorithms.split(",") if name.strip()
        ),
        traffic=traffic,
        entropy=args.entropy,
    )
    n_jobs = len(spec.expand())

    def _progress(result) -> None:
        if args.quiet:
            return
        total = result.metrics.get("total_mbps")
        detail = (
            f"{total:8.1f} Mbps" if total is not None else result.error or ""
        )
        print(f"  [{result.job_id}] {result.status:7s} {detail}", flush=True)

    profile = getattr(args, "profile", False)
    if profile:
        from .obs import Tracer, activate, merge_traces, render_trace_text

        driver = Tracer()
        with activate(driver):
            store = run_sweep(
                spec,
                workers=args.workers,
                timeout_s=args.timeout,
                retries=args.retries,
                journal_path=args.out,
                resume=args.resume,
                progress=_progress,
                profile=True,
            )
        payloads = [driver.to_payload()]
        payloads.extend(r.trace for r in store if r.trace is not None)
        trace_text = render_trace_text(
            merge_traces(payloads), title="Sweep profile"
        )
    else:
        store = run_sweep(
            spec,
            workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
            journal_path=args.out,
            resume=args.resume,
            progress=_progress,
        )
        trace_text = None
    fresh = len(store) - store.reloaded
    print(
        f"sweep: {len(store)}/{n_jobs} jobs "
        f"({store.reloaded} reloaded from journal, {fresh} executed, "
        f"{len(store.failed)} failed)"
    )
    print(store.summary_table())
    violations = store.check_violations()
    if violations:
        print()
        print(
            render_table(
                ["job", "scenario", "check", "detail"],
                [
                    [v["job_id"], v["scenario"], v["check"], v["detail"]]
                    for v in violations
                ],
                title="Invariant-check violations",
            )
        )
    print(f"checks: {len(violations)} invariant-check violation(s)")
    if trace_text is not None:
        print()
        print(trace_text)
    gate_failed = store.failed or len(store) < n_jobs
    if args.enforce_checks and violations:
        gate_failed = True
    return 1 if gate_failed else 0


def _git_changed_files(ref: str) -> "List[str]":
    """Absolute paths of tracked .py files changed vs ``ref``."""
    import pathlib
    import subprocess

    from .errors import LintError

    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--", "*.py"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise LintError(
            f"--changed could not diff against {ref!r}: {detail.strip()}"
        ) from exc
    return [
        str(pathlib.Path(toplevel) / line)
        for line in diff.splitlines()
        if line.strip()
    ]


def _run_lint(args: argparse.Namespace) -> int:
    from .lint import changed_scope, lint_paths, rule_catalog

    if args.list_rules:
        print(
            render_table(
                ["rule", "title", "exempt modules"],
                [
                    [row["id"], row["title"], row["exempt"]]
                    for row in rule_catalog()
                ],
                title="reprolint rules (see docs/LINT_RULES.md)",
            )
        )
        return 0
    select = (
        [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
        if args.rules
        else None
    )
    use_cache = not args.no_cache
    paths = args.paths
    project_paths = None
    if args.changed is not None:
        import pathlib

        changed = _git_changed_files(args.changed)
        scope = changed_scope(
            [pathlib.Path(p) for p in paths], changed, use_cache=use_cache
        )
        if not scope:
            print(f"clean: no lintable changes vs {args.changed}")
            return 0
        project_paths = paths
        paths = scope
    report = lint_paths(
        paths,
        select=select,
        use_cache=use_cache,
        project_paths=project_paths,
    )
    print(report.render(args.format))
    if args.timings and args.format == "text":
        print(
            render_table(
                ["rule", "seconds"],
                [
                    [rule_id, f"{seconds:.4f}"]
                    for rule_id, seconds in report.timing_rows()
                ],
                title="per-rule wall time",
            )
        )
    if args.explain:
        matches = [f for f in report.findings if f.rule_id == args.explain]
        if matches:
            print(f"\n{args.explain} call chains:")
            for finding in matches:
                print(finding.render_chain())
        else:
            print(f"\nno {args.explain} findings to explain")
    return report.exit_code


_HANDLERS = {
    "scenario": _run_scenario,
    "mobility": _run_mobility,
    "transitions": _run_transitions,
    "trace": _run_trace,
    "longrun": _run_longrun,
    "timeline": _run_timeline,
    "sweep": _run_sweep,
    "serve": _run_serve,
    "lint": _run_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (:class:`~repro.errors.ReproError`) are reported as a
    one-line ``error: ...`` message on stderr with exit code 2 instead
    of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
