"""MAC substrate: DCF timing, airtime accounting, the performance anomaly."""

from .dcf import MacTimings, DEFAULT_TIMINGS
from .airtime import (
    client_delay_s,
    aggregate_transmission_delay_s,
    medium_share,
    per_client_throughput_mbps,
    cell_throughput_mbps,
)
from .anomaly import anomaly_cell_throughput_mbps, fair_share_throughput_mbps
from .aggregation import AmpduModel
from .packetsim import (
    CellSimResult,
    SimulatedLink,
    simulate_cell,
    simulate_contending_aps,
)

__all__ = [
    "MacTimings",
    "DEFAULT_TIMINGS",
    "client_delay_s",
    "aggregate_transmission_delay_s",
    "medium_share",
    "per_client_throughput_mbps",
    "cell_throughput_mbps",
    "anomaly_cell_throughput_mbps",
    "fair_share_throughput_mbps",
    "AmpduModel",
    "SimulatedLink",
    "CellSimResult",
    "simulate_cell",
    "simulate_contending_aps",
]
