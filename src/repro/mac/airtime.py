"""Airtime accounting in the paper's own terms: d_cl, ATD, M, X = M/ATD.

Section 4.1 / 5.1: each AP tracks the transmission delay per client
``d_cl`` (expected channel time to deliver one packet, retries included),
its aggregate transmission delay ``ATD = Σ d_cl``, and its channel access
share ``M = 1/(|con| + 1)`` where ``con`` is the set of co-channel
contending APs. Per-client throughput under saturated downlink traffic
is then ``X = M / ATD`` packets per second per client.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from .dcf import DEFAULT_TIMINGS, MacTimings

__all__ = [
    "client_delay_s",
    "aggregate_transmission_delay_s",
    "medium_share",
    "per_client_throughput_mbps",
    "cell_throughput_mbps",
]


def client_delay_s(
    phy_rate_mbps: float,
    per: float,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    timings: MacTimings = DEFAULT_TIMINGS,
) -> float:
    """Expected airtime to deliver one packet to a client (d_cl).

    One attempt costs ``packet_airtime``; with packet error probability
    ``per`` and persistent retransmission, the expected number of
    attempts is ``1/(1-per)``. A PER of 1 yields ``inf`` — the client
    cannot be served at all (the paper's "poor clients are hardly able
    to communicate" case).
    """
    if not 0.0 <= per <= 1.0:
        raise ConfigurationError(f"per must be in [0, 1], got {per}")
    airtime = timings.packet_airtime_s(8 * packet_bytes, phy_rate_mbps)
    if per >= 1.0:
        return float("inf")
    return airtime / (1.0 - per)


def aggregate_transmission_delay_s(delays_s: Iterable[float]) -> float:
    """ATD: sum of the per-client delays of an AP."""
    total = 0.0
    count = 0
    for delay in delays_s:
        if delay < 0:
            raise ConfigurationError(f"delays must be non-negative, got {delay}")
        total += delay
        count += 1
    if count == 0:
        raise ConfigurationError("ATD of an AP with no clients is undefined")
    return total


def medium_share(n_contenders: int) -> float:
    """M = 1/(|con| + 1): long-term channel access share of an AP.

    ``n_contenders`` is the number of *other* APs contending on
    conflicting channels (Section 5.1's estimation, exact when all
    contenders are in range of each other under saturation).
    """
    if n_contenders < 0:
        raise ConfigurationError(
            f"contender count must be non-negative, got {n_contenders}"
        )
    return 1.0 / (n_contenders + 1.0)


def per_client_throughput_mbps(
    m_share: float,
    atd_s: float,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
) -> float:
    """X = M/ATD in delivered megabits per second per client."""
    if not 0.0 < m_share <= 1.0:
        raise ConfigurationError(f"medium share must be in (0, 1], got {m_share}")
    if atd_s <= 0:
        raise ConfigurationError(f"ATD must be positive, got {atd_s}")
    packets_per_second = m_share / atd_s
    return packets_per_second * 8 * packet_bytes / 1e6


def cell_throughput_mbps(
    delays_s: Sequence[float],
    m_share: float = 1.0,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
) -> float:
    """Aggregate downlink throughput of one AP cell.

    With DCF's per-packet fairness every client receives packets at the
    same rate M/ATD, so the cell total is ``K * M/ATD`` packets/s. A
    single unreachable client (infinite delay) drags the whole cell to
    zero — the 802.11 performance anomaly in its starkest form.
    """
    if len(delays_s) == 0:
        return 0.0
    atd = aggregate_transmission_delay_s(delays_s)
    if atd == float("inf"):
        return 0.0
    per_client = per_client_throughput_mbps(m_share, atd, packet_bytes)
    return len(delays_s) * per_client
