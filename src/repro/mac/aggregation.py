"""A-MPDU frame aggregation — the post-paper 802.11n MAC feature.

The paper's 2010 testbed tops out near 70 Mbps although HT40 MCS 15 is
nominally 270 Mbps: per-packet DCF overhead dominates. Mature 802.11n
deployments amortise that overhead by aggregating many MPDUs under one
PHY preamble with a single block ACK. This module models A-MPDU airtime
so the reproduction can ask the forward-looking question: *does ACORN's
width logic still matter when aggregation removes most of the overhead?*
(It does — the 3 dB SNR penalty of bonding is a PHY fact that
aggregation cannot touch; see ``benchmarks/test_aggregation.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from .dcf import DEFAULT_TIMINGS, MacTimings

__all__ = ["AmpduModel"]

# 802.11n caps an A-MPDU at 64 MPDUs (block-ACK window) and 65535 bytes.
MAX_AGGREGATION = 64
MAX_AMPDU_BYTES = 65_535

# Per-MPDU delimiter + padding overhead inside an A-MPDU.
_DELIMITER_BYTES = 4


@dataclass(frozen=True)
class AmpduModel:
    """Airtime accounting for aggregated transmissions.

    Parameters
    ----------
    timings:
        Base DCF timing (contention, preamble, SIFS). The block ACK
        replaces the per-packet ACK.
    max_aggregation:
        Upper bound on MPDUs per A-MPDU (the 802.11n block-ACK window
        allows 64; drivers often use less).
    block_ack_s:
        Airtime of the compressed block ACK response.
    """

    timings: MacTimings = DEFAULT_TIMINGS
    max_aggregation: int = MAX_AGGREGATION
    block_ack_s: float = 68e-6

    def __post_init__(self) -> None:
        if not 1 <= self.max_aggregation <= MAX_AGGREGATION:
            raise ConfigurationError(
                f"aggregation must be in [1, {MAX_AGGREGATION}], "
                f"got {self.max_aggregation}"
            )
        if self.block_ack_s < 0:
            raise ConfigurationError("block_ack_s must be non-negative")

    # ------------------------------------------------------------------
    def mpdus_per_ampdu(self, packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES) -> int:
        """How many packets fit in one A-MPDU."""
        if packet_bytes <= 0:
            raise ConfigurationError(
                f"packet size must be positive, got {packet_bytes}"
            )
        by_size = MAX_AMPDU_BYTES // (packet_bytes + _DELIMITER_BYTES)
        return max(1, min(self.max_aggregation, by_size))

    def ampdu_airtime_s(
        self, phy_rate_mbps: float, packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    ) -> float:
        """Channel time of one full A-MPDU exchange."""
        if phy_rate_mbps <= 0:
            raise ConfigurationError(
                f"phy rate must be positive, got {phy_rate_mbps}"
            )
        n_mpdus = self.mpdus_per_ampdu(packet_bytes)
        payload_bits = 8 * n_mpdus * (packet_bytes + _DELIMITER_BYTES)
        fixed = (
            self.timings.difs_s
            + self.timings.mean_backoff_s
            + self.timings.phy_preamble_s
            + self.timings.sifs_s
            + self.block_ack_s
        )
        return fixed + payload_bits / (phy_rate_mbps * 1e6)

    def packet_airtime_s(
        self, phy_rate_mbps: float, packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    ) -> float:
        """Amortised per-packet airtime under full aggregation."""
        n_mpdus = self.mpdus_per_ampdu(packet_bytes)
        return self.ampdu_airtime_s(phy_rate_mbps, packet_bytes) / n_mpdus

    def mac_efficiency(
        self, phy_rate_mbps: float, packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    ) -> float:
        """Goodput fraction of the PHY rate under aggregation.

        Selective block-ACK retransmission means only lost MPDUs repeat,
        so (unlike per-packet DCF) PER scales goodput linearly; that
        factor is applied by the caller.
        """
        per_packet = self.packet_airtime_s(phy_rate_mbps, packet_bytes)
        return (8 * packet_bytes / (phy_rate_mbps * 1e6)) / per_packet

    def client_delay_s(
        self,
        phy_rate_mbps: float,
        per: float,
        packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    ) -> float:
        """Expected per-delivered-packet airtime with block-ACK retries.

        Only failed MPDUs are retransmitted (selective repeat), so the
        expected attempts per packet stay 1/(1-per) but without
        re-paying the fixed overhead per retry — aggregation's second
        benefit on lossy links.
        """
        if not 0.0 <= per <= 1.0:
            raise ConfigurationError(f"per must be in [0, 1], got {per}")
        if per >= 1.0:
            return float("inf")
        n_mpdus = self.mpdus_per_ampdu(packet_bytes)
        fixed_share = (
            self.ampdu_airtime_s(phy_rate_mbps, packet_bytes)
            - 8
            * n_mpdus
            * (packet_bytes + _DELIMITER_BYTES)
            / (phy_rate_mbps * 1e6)
        ) / n_mpdus
        payload_s = 8 * (packet_bytes + _DELIMITER_BYTES) / (phy_rate_mbps * 1e6)
        return fixed_share + payload_s / (1.0 - per)
