"""The 802.11 performance anomaly (Heusse et al., INFOCOM 2003).

DCF gives every station equal long-term *transmission opportunities*, not
equal airtime. A slow client's packets occupy the channel longer, so the
cell degenerates toward the slowest client's rate. This module provides
the closed-form cell throughput under the anomaly and the counterfactual
"fair share" for comparison; the effect is why ACORN groups
similar-quality clients per cell before enabling channel bonding.
"""

from __future__ import annotations

from typing import Sequence

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from .airtime import cell_throughput_mbps, client_delay_s
from .dcf import DEFAULT_TIMINGS, MacTimings

__all__ = ["anomaly_cell_throughput_mbps", "fair_share_throughput_mbps"]


def anomaly_cell_throughput_mbps(
    client_rates_mbps: Sequence[float],
    client_pers: "Sequence[float] | None" = None,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    timings: MacTimings = DEFAULT_TIMINGS,
    m_share: float = 1.0,
) -> float:
    """Cell throughput when clients share per-packet (anomaly) fairness.

    ``client_rates_mbps`` are per-client PHY rates; optional
    ``client_pers`` add loss-driven retransmissions. Equivalent to
    ``K * M / ATD`` with ATD built from the per-client delays.
    """
    if client_pers is None:
        client_pers = [0.0] * len(client_rates_mbps)
    if len(client_pers) != len(client_rates_mbps):
        raise ConfigurationError(
            f"{len(client_rates_mbps)} rates but {len(client_pers)} PERs"
        )
    delays = [
        client_delay_s(rate, per, packet_bytes, timings)
        for rate, per in zip(client_rates_mbps, client_pers)
    ]
    return cell_throughput_mbps(delays, m_share=m_share, packet_bytes=packet_bytes)


def fair_share_throughput_mbps(
    client_rates_mbps: Sequence[float],
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    timings: MacTimings = DEFAULT_TIMINGS,
    m_share: float = 1.0,
) -> float:
    """Counterfactual cell throughput under equal-*airtime* sharing.

    With airtime fairness each client gets 1/K of the channel time and
    delivers at its own MAC-efficiency rate; a slow client then only
    hurts itself. The gap to the anomaly value quantifies the damage a
    poor client inflicts on a bonded cell.
    """
    k = len(client_rates_mbps)
    if k == 0:
        return 0.0
    if not 0.0 < m_share <= 1.0:
        raise ConfigurationError(f"medium share must be in (0, 1], got {m_share}")
    total = 0.0
    packet_bits = 8 * packet_bytes
    for rate in client_rates_mbps:
        airtime = timings.packet_airtime_s(packet_bits, rate)
        mac_rate_mbps = packet_bits / airtime / 1e6
        total += mac_rate_mbps / k
    return total * m_share
