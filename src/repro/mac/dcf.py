"""802.11 DCF timing model: the fixed per-packet overhead.

The distributed coordination function spends channel time on DIFS,
backoff, PHY preambles, SIFS and the ACK in addition to the payload
itself. This fixed per-packet tax is why measured 802.11n throughput
saturates far below the nominal PHY rate (the paper's testbed tops out
near 70 Mbps although HT40 MCS15 is nominally 270 Mbps).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["MacTimings", "DEFAULT_TIMINGS"]


@dataclass(frozen=True)
class MacTimings:
    """Per-packet MAC/PHY overhead components (seconds).

    Defaults follow 802.11n in the 5 GHz band without frame
    aggregation (the paper predates wide A-MPDU deployment and its
    throughput ceiling matches unaggregated operation).
    """

    slot_s: float = 9e-6
    sifs_s: float = 16e-6
    difs_s: float = 34e-6  # SIFS + 2 slots
    cw_min: int = 15
    phy_preamble_s: float = 36e-6  # HT-mixed preamble
    ack_s: float = 44e-6  # ACK at a legacy basic rate
    # Frames sent per channel access. 802.11n cards burst a couple of
    # MPDUs per TXOP even without full A-MPDU aggregation; 2 reproduces
    # the paper's observed throughput ceilings (~60/80 Mbps at 20/40 MHz).
    burst_size: int = 2

    def __post_init__(self) -> None:
        for name in ("slot_s", "sifs_s", "difs_s", "phy_preamble_s", "ack_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.cw_min < 0:
            raise ConfigurationError(f"cw_min must be non-negative, got {self.cw_min}")
        if self.burst_size < 1:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )

    @property
    def mean_backoff_s(self) -> float:
        """Average initial backoff: CWmin/2 slots."""
        return self.cw_min / 2.0 * self.slot_s

    @property
    def per_packet_overhead_s(self) -> float:
        """Fixed channel time consumed around every data payload."""
        return (
            self.difs_s
            + self.mean_backoff_s
            + self.phy_preamble_s
            + self.sifs_s
            + self.ack_s
        )

    def packet_airtime_s(self, packet_bits: int, phy_rate_mbps: float) -> float:
        """Amortised channel time of one packet attempt at ``phy_rate_mbps``.

        The fixed contention/preamble/ACK overhead is shared across the
        ``burst_size`` frames of one channel access.
        """
        if packet_bits <= 0:
            raise ConfigurationError(f"packet_bits must be positive, got {packet_bits}")
        if phy_rate_mbps <= 0:
            raise ConfigurationError(
                f"phy rate must be positive, got {phy_rate_mbps}"
            )
        payload_s = packet_bits / (phy_rate_mbps * 1e6)
        return self.per_packet_overhead_s / self.burst_size + payload_s

    def mac_efficiency(self, packet_bits: int, phy_rate_mbps: float) -> float:
        """Fraction of airtime spent on payload at this rate."""
        airtime = self.packet_airtime_s(packet_bits, phy_rate_mbps)
        return (packet_bits / (phy_rate_mbps * 1e6)) / airtime


DEFAULT_TIMINGS = MacTimings()
