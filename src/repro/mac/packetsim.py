"""Packet-level DCF simulation — the analytic MAC model's ground truth.

The evaluator computes cell throughput analytically (X = M/ATD with the
performance anomaly). This module *simulates* the same system packet by
packet: a saturated downlink AP serves its clients with per-packet
round-robin fairness, every attempt occupies the channel for the
client's airtime, losses trigger retransmissions, and contending APs
win channel accesses with equal probability. The test suite checks the
simulation converges to the closed forms — the classic way to validate
an analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from ..config import DEFAULT_PACKET_SIZE_BYTES, make_rng
from ..errors import ConfigurationError

__all__ = ["SimulatedLink", "CellSimResult", "simulate_cell", "simulate_contending_aps"]

# 802.11 dot11LongRetryLimit: drop a packet after this many attempts.
DEFAULT_RETRY_LIMIT = 7


@dataclass(frozen=True)
class SimulatedLink:
    """One downlink client as the simulator sees it."""

    client_id: str
    airtime_s: float  # channel time of one transmission attempt
    per: float = 0.0  # probability an attempt fails

    def __post_init__(self) -> None:
        if self.airtime_s <= 0:
            raise ConfigurationError(
                f"airtime must be positive, got {self.airtime_s}"
            )
        if not 0.0 <= self.per <= 1.0:
            raise ConfigurationError(f"per must be in [0, 1], got {self.per}")


@dataclass
class CellSimResult:
    """Delivered-packet accounting for one simulated cell."""

    duration_s: float
    packet_bytes: int
    delivered: Dict[str, int] = field(default_factory=dict)
    dropped: Dict[str, int] = field(default_factory=dict)
    busy_time_s: float = 0.0

    def client_throughput_mbps(self, client_id: str) -> float:
        """Delivered goodput of one client."""
        packets = self.delivered.get(client_id, 0)
        return packets * 8 * self.packet_bytes / self.duration_s / 1e6

    @property
    def cell_throughput_mbps(self) -> float:
        """Aggregate delivered goodput of the cell."""
        total_packets = sum(self.delivered.values())
        return total_packets * 8 * self.packet_bytes / self.duration_s / 1e6

    @property
    def utilisation(self) -> float:
        """Fraction of the simulated time the cell held the channel."""
        return self.busy_time_s / self.duration_s


def _serve_one_packet(
    link: SimulatedLink,
    rng: np.random.Generator,
    retry_limit: int,
) -> "tuple[float, bool]":
    """Airtime consumed and delivery outcome of one head-of-line packet."""
    airtime = 0.0
    for _ in range(retry_limit):
        airtime += link.airtime_s
        if rng.random() >= link.per:
            return airtime, True
    return airtime, False


def simulate_cell(
    links: Sequence[SimulatedLink],
    duration_s: float = 10.0,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    retry_limit: int = DEFAULT_RETRY_LIMIT,
    rng: "np.random.Generator | int | None" = None,
) -> CellSimResult:
    """Simulate one isolated, saturated downlink cell.

    The AP serves clients round-robin one packet at a time — DCF's
    equal long-term transmission opportunities. A slow or lossy client
    occupies the channel for longer per packet, starving the others'
    *throughput* while packet counts stay equal: the performance
    anomaly, emerging rather than assumed.
    """
    if not links:
        raise ConfigurationError("a cell needs at least one client")
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    ids = [link.client_id for link in links]
    if len(set(ids)) != len(ids):
        raise ConfigurationError(f"duplicate client ids in {ids}")
    rng = make_rng(rng)
    result = CellSimResult(
        duration_s=duration_s,
        packet_bytes=packet_bytes,
        delivered={link.client_id: 0 for link in links},
        dropped={link.client_id: 0 for link in links},
    )
    clock = 0.0
    index = 0
    while True:
        link = links[index % len(links)]
        airtime, ok = _serve_one_packet(link, rng, retry_limit)
        if clock + airtime > duration_s:
            break
        clock += airtime
        result.busy_time_s += airtime
        if ok:
            result.delivered[link.client_id] += 1
        else:
            result.dropped[link.client_id] += 1
        index += 1
    return result


def simulate_contending_aps(
    cells: Mapping[str, Sequence[SimulatedLink]],
    duration_s: float = 10.0,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    retry_limit: int = DEFAULT_RETRY_LIMIT,
    rng: "np.random.Generator | int | None" = None,
) -> Dict[str, CellSimResult]:
    """Simulate co-channel APs sharing one medium.

    Each channel access goes to a uniformly random contender (DCF's
    symmetric long-term access), who serves its next client round-robin.
    With n contenders every AP's access share converges to 1/n —
    the M = 1/(|con|+1) the analytical model uses.
    """
    if not cells:
        raise ConfigurationError("need at least one AP")
    for ap_id, links in cells.items():
        if not links:
            raise ConfigurationError(f"AP {ap_id!r} has no clients")
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    rng = make_rng(rng)
    ap_ids = list(cells)
    results = {
        ap_id: CellSimResult(
            duration_s=duration_s,
            packet_bytes=packet_bytes,
            delivered={link.client_id: 0 for link in cells[ap_id]},
            dropped={link.client_id: 0 for link in cells[ap_id]},
        )
        for ap_id in ap_ids
    }
    next_client = {ap_id: 0 for ap_id in ap_ids}
    clock = 0.0
    while True:
        ap_id = ap_ids[int(rng.integers(0, len(ap_ids)))]
        links = cells[ap_id]
        link = links[next_client[ap_id] % len(links)]
        airtime, ok = _serve_one_packet(link, rng, retry_limit)
        if clock + airtime > duration_s:
            break
        clock += airtime
        result = results[ap_id]
        result.busy_time_s += airtime
        if ok:
            result.delivered[link.client_id] += 1
        else:
            result.dropped[link.client_id] += 1
        next_client[ap_id] += 1
    return results
