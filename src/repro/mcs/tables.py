"""The 802.11n MCS table (indices 0-15, one and two spatial streams).

Rates are not hard-coded: they are derived from the OFDM numerology via
:func:`repro.phy.ofdm.nominal_data_rate_mbps`, which reproduces the
standard's values exactly (e.g. MCS 7 = 65 Mbps HT20 / 135 Mbps HT40
long GI; MCS 15 = 130 / 270 Mbps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..phy.modulation import BPSK, QAM16, QAM64, QPSK, Modulation
from ..phy.ofdm import OfdmParams, nominal_data_rate_mbps

__all__ = [
    "McsEntry",
    "MCS_TABLE",
    "mcs_by_index",
    "modcod_label",
    "single_stream_entries",
    "dual_stream_entries",
]

# (modulation, code rate) ladder for MCS 0..7; MCS 8..15 repeat it with
# two spatial streams.
_SINGLE_STREAM_LADDER: Tuple[Tuple[Modulation, float], ...] = (
    (BPSK, 1 / 2),
    (QPSK, 1 / 2),
    (QPSK, 3 / 4),
    (QAM16, 1 / 2),
    (QAM16, 3 / 4),
    (QAM64, 2 / 3),
    (QAM64, 3 / 4),
    (QAM64, 5 / 6),
)


@dataclass(frozen=True)
class McsEntry:
    """One row of the 802.11n MCS table."""

    index: int
    modulation: Modulation
    code_rate: float
    n_streams: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"MCS index must be >= 0, got {self.index}")
        if self.n_streams not in (1, 2):
            raise ConfigurationError(
                f"this reproduction models 1 or 2 streams, got {self.n_streams}"
            )

    @property
    def per_stream_index(self) -> int:
        """Index within the single-stream ladder (0-7), as plotted in Fig 6b."""
        return self.index % len(_SINGLE_STREAM_LADDER)

    def rate_mbps(self, params: OfdmParams, short_gi: bool = False) -> float:
        """Nominal PHY rate for this MCS on numerology ``params``."""
        return nominal_data_rate_mbps(
            params,
            self.modulation.bits_per_symbol,
            self.code_rate,
            n_streams=self.n_streams,
            short_gi=short_gi,
        )

    @property
    def label(self) -> str:
        """Human-readable mod/code label, e.g. ``"64QAM 3/4 x2"``."""
        suffix = f" x{self.n_streams}" if self.n_streams > 1 else ""
        return f"{modcod_label(self.modulation, self.code_rate)}{suffix}"


def modcod_label(modulation: Modulation, code_rate: float) -> str:
    """Canonical label for a modulation-and-code-rate pair."""
    from fractions import Fraction

    fraction = Fraction(code_rate).limit_denominator(12)
    return f"{modulation.name} {fraction.numerator}/{fraction.denominator}"


def _build_table() -> Dict[int, McsEntry]:
    table: Dict[int, McsEntry] = {}
    for streams in (1, 2):
        for position, (modulation, rate) in enumerate(_SINGLE_STREAM_LADDER):
            index = (streams - 1) * len(_SINGLE_STREAM_LADDER) + position
            table[index] = McsEntry(
                index=index,
                modulation=modulation,
                code_rate=rate,
                n_streams=streams,
            )
    return table


MCS_TABLE: Dict[int, McsEntry] = _build_table()


def mcs_by_index(index: int) -> McsEntry:
    """Look up an MCS entry (0-15)."""
    try:
        return MCS_TABLE[index]
    except KeyError:
        raise ConfigurationError(
            f"MCS index {index} out of range 0..{max(MCS_TABLE)}"
        ) from None


def single_stream_entries() -> List[McsEntry]:
    """MCS 0-7 in index order."""
    return [MCS_TABLE[i] for i in range(8)]


def dual_stream_entries() -> List[McsEntry]:
    """MCS 8-15 in index order."""
    return [MCS_TABLE[i] for i in range(8, 16)]
