"""802.11n Modulation and Coding Scheme (MCS) tables and optimal selection."""

from .tables import MCS_TABLE, McsEntry, mcs_by_index, modcod_label
from .selection import RateDecision, optimal_mcs, optimal_mcs_fixed_mode

__all__ = [
    "McsEntry",
    "MCS_TABLE",
    "mcs_by_index",
    "modcod_label",
    "RateDecision",
    "optimal_mcs",
    "optimal_mcs_fixed_mode",
]
