"""Optimal MCS/mode selection — the stand-in for the Ralink auto-rate.

The paper's cards run a proprietary algorithm that "not only adjusts the
rates in response to packet successes/failures but also picks the best
mode of operation (SDM or STBC) based on the channel quality", and Fig 6b
finds the *optimal* MCS by exhaustive search. We implement that search
directly: for a link SNR, evaluate every MCS in both MIMO modes and keep
the one maximising expected goodput ``(1 - PER) * R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from ..phy.ber import coded_ber
from ..phy.mimo import MimoMode, effective_snr_db
from ..phy.ofdm import OfdmParams
from ..phy.per import per_from_ber
from .tables import MCS_TABLE, McsEntry

__all__ = ["RateDecision", "optimal_mcs", "optimal_mcs_fixed_mode"]


@dataclass(frozen=True)
class RateDecision:
    """Outcome of rate selection for one link on one channel width."""

    mcs: McsEntry
    mode: MimoMode
    nominal_rate_mbps: float
    per: float
    goodput_mbps: float

    @property
    def per_stream_index(self) -> int:
        """Single-stream ladder position (0-7), the Fig 6b y/x axis."""
        return self.mcs.per_stream_index


def _candidates_for_mode(mode: MimoMode) -> Iterable[McsEntry]:
    """MCS entries applicable to a MIMO mode.

    STBC carries a single stream (MCS 0-7); SDM carries two (MCS 8-15).
    """
    for entry in MCS_TABLE.values():
        if entry.n_streams == mode.n_streams:
            yield entry


def _evaluate(
    entry: McsEntry,
    mode: MimoMode,
    link_snr_db: float,
    params: OfdmParams,
    packet_bytes: int,
    short_gi: bool,
) -> RateDecision:
    stream_snr = effective_snr_db(link_snr_db, mode)
    ber = coded_ber(entry.modulation, entry.code_rate, stream_snr)
    per = per_from_ber(ber, packet_bytes)
    rate = entry.rate_mbps(params, short_gi=short_gi)
    return RateDecision(
        mcs=entry,
        mode=mode,
        nominal_rate_mbps=rate,
        per=float(per),
        goodput_mbps=float(rate * (1.0 - per)),
    )


def optimal_mcs(
    link_snr_db: float,
    params: OfdmParams,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    short_gi: bool = False,
    modes: Optional[Iterable[MimoMode]] = None,
) -> RateDecision:
    """Exhaustive goodput-optimal MCS and MIMO mode for a link.

    ``link_snr_db`` is the per-subcarrier SNR the link would see on
    numerology ``params`` (so callers apply the 3 dB bonding calibration
    *before* calling; :mod:`repro.link.estimator` does this).
    """
    if packet_bytes <= 0:
        raise ConfigurationError(f"packet size must be positive, got {packet_bytes}")
    modes = tuple(modes) if modes is not None else (MimoMode.STBC, MimoMode.SDM)
    if not modes:
        raise ConfigurationError("at least one MIMO mode is required")
    best: Optional[RateDecision] = None
    for mode in modes:
        for entry in _candidates_for_mode(mode):
            decision = _evaluate(
                entry, mode, link_snr_db, params, packet_bytes, short_gi
            )
            if best is None or decision.goodput_mbps > best.goodput_mbps:
                best = decision
    assert best is not None  # modes is non-empty and each has 8 entries
    return best


def optimal_mcs_fixed_mode(
    link_snr_db: float,
    params: OfdmParams,
    mode: MimoMode,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    short_gi: bool = False,
) -> RateDecision:
    """Goodput-optimal MCS when the MIMO mode is imposed."""
    return optimal_mcs(
        link_snr_db,
        params,
        packet_bytes=packet_bytes,
        short_gi=short_gi,
        modes=(mode,),
    )
