"""Long-run operation under client churn: why T = 30 minutes.

The paper picks its re-allocation periodicity from the CRAWDAD
association durations: "if we apply it too often, the hit in the
throughput could be significant due to the overhead; if we activate
channel allocation too infrequently, the topology might have
significantly changed in the interim". This module simulates exactly
that trade-off: clients arrive as a Poisson process, stay for
trace-calibrated log-normal sessions, associate through Algorithm 1 on
arrival, and Algorithm 2 re-runs every ``period_s`` at a downtime cost.
The time-weighted mean throughput as a function of the period is the
curve the paper reasons about.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..config import make_rng
from ..core.controller import Acorn
from ..errors import AssociationError, ConfigurationError
from ..net.channels import ChannelPlan
from ..net.throughput import ThroughputModel
from ..net.topology import Network
from ..traces.associations import (
    PAPER_MEDIAN_S,
    PAPER_P90_S,
    synthesize_association_durations,
)

__all__ = ["ChurnConfig", "LongRunResult", "run_long_run"]

# Event ordering tags (heap ties broken deterministically).
_ARRIVAL, _DEPARTURE, _REALLOCATION = 0, 1, 2


@dataclass(frozen=True)
class ChurnConfig:
    """Workload and control knobs of the long-run simulation."""

    duration_s: float = 4 * 3600.0
    arrival_rate_per_s: float = 1 / 120.0
    median_session_s: float = PAPER_MEDIAN_S
    p90_session_s: float = PAPER_P90_S
    period_s: float = 30 * 60.0
    # Channel switches cost real time: CSA quiet periods, client
    # re-association, and DFS checks. 15 s per re-allocation is a
    # conservative enterprise figure.
    reallocation_downtime_s: float = 15.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.period_s <= 0:
            raise ConfigurationError("period must be positive")
        if self.reallocation_downtime_s < 0:
            raise ConfigurationError("downtime must be non-negative")


@dataclass
class LongRunResult:
    """Time-weighted accounting of one long-run simulation."""

    config: ChurnConfig
    mean_throughput_mbps: float
    n_arrivals: int
    n_departures: int
    n_reallocations: int
    downtime_s: float
    samples: List[Tuple[float, float]] = field(repr=False, default_factory=list)

    @property
    def peak_throughput_mbps(self) -> float:
        """Largest throughput level observed."""
        if not self.samples:
            return 0.0
        return max(value for _, value in self.samples)


def _client_pool(
    network: Network, pool_size: int, rng: np.random.Generator
) -> List[str]:
    """Pre-register a pool of potential clients with random link SNRs.

    Each client hears a random subset of the APs at qualities spanning
    poor to excellent, so the population mix (and hence the right width
    decisions) drifts as sessions come and go.
    """
    ap_ids = network.ap_ids
    pool = []
    for index in range(pool_size):
        client_id = f"pool{index}"
        network.add_client(client_id)
        n_heard = int(rng.integers(1, min(3, len(ap_ids)) + 1))
        heard = rng.choice(len(ap_ids), size=n_heard, replace=False)
        for ap_index in heard:
            snr = float(rng.uniform(-1.0, 30.0))
            network.set_link_snr(ap_ids[int(ap_index)], client_id, snr)
        pool.append(client_id)
    return pool


def run_long_run(
    network: Network,
    plan: ChannelPlan,
    config: ChurnConfig,
    model: Optional[ThroughputModel] = None,
    pool_size: int = 64,
) -> LongRunResult:
    """Simulate hours of churned operation under periodic re-allocation.

    ``network`` supplies the APs (and optionally pre-placed clients);
    a pool of transient clients is added on top. Throughput between
    events is piecewise constant; re-allocations zero it for the
    configured downtime.
    """
    model = model if model is not None else ThroughputModel()
    rng = make_rng(config.seed)
    pool = _client_pool(network, pool_size, rng)
    idle = list(pool)
    acorn = Acorn(network, plan, model, seed=config.seed)
    acorn.assign_initial_channels()

    durations = synthesize_association_durations(
        4096,
        median_s=config.median_session_s,
        p90_s=config.p90_session_s,
        rng=rng,
    )
    duration_iter = iter(durations.tolist())

    events: List[Tuple[float, int, int, str]] = []
    sequence = 0

    def push(when: float, kind: int, payload: str) -> None:
        nonlocal sequence
        heapq.heappush(events, (when, kind, sequence, payload))
        sequence += 1

    # Seed the event queue.
    push(float(rng.exponential(1.0 / config.arrival_rate_per_s)), _ARRIVAL, "")
    next_reallocation = config.period_s
    while next_reallocation < config.duration_s:
        push(next_reallocation, _REALLOCATION, "")
        next_reallocation += config.period_s

    result = LongRunResult(
        config=config,
        mean_throughput_mbps=0.0,
        n_arrivals=0,
        n_departures=0,
        n_reallocations=0,
        downtime_s=0.0,
    )
    clock = 0.0
    weighted_sum = 0.0
    current_throughput = 0.0

    def advance_to(when: float) -> None:
        nonlocal clock, weighted_sum
        weighted_sum += current_throughput * (when - clock)
        clock = when

    def measure() -> float:
        return model.aggregate_mbps(network, acorn.graph)

    while events:
        when, kind, _, payload = heapq.heappop(events)
        if when >= config.duration_s:
            break
        advance_to(when)
        if kind == _ARRIVAL:
            push(
                when + float(rng.exponential(1.0 / config.arrival_rate_per_s)),
                _ARRIVAL,
                "",
            )
            if idle:
                client_id = idle.pop(int(rng.integers(0, len(idle))))
                try:
                    acorn.admit_client(client_id)
                except AssociationError:
                    idle.append(client_id)
                else:
                    result.n_arrivals += 1
                    session = next(duration_iter, config.median_session_s)
                    push(when + float(session), _DEPARTURE, client_id)
        elif kind == _DEPARTURE:
            network.disassociate(payload)
            acorn.invalidate_graph()
            idle.append(payload)
            result.n_departures += 1
        else:  # _REALLOCATION
            acorn.allocate()
            result.n_reallocations += 1
            downtime = min(
                config.reallocation_downtime_s,
                config.duration_s - clock,
            )
            # The network carries no traffic while channels switch.
            result.downtime_s += downtime
            current_throughput = 0.0
            advance_to(clock + downtime)
        current_throughput = measure()
        result.samples.append((clock, current_throughput))
    advance_to(config.duration_s)
    result.mean_throughput_mbps = weighted_sum / config.duration_s
    return result
