"""Declarative scenario builder: fluent chains that compile to scenarios.

``scenario("atrium").grid_aps(6, 6).clients(200, clusters=5)...`` builds
the same :class:`~repro.sim.scenario.Scenario` contract the registry,
fleet, timeline, and CLI already consume, with three guarantees:

* **Eager validation.** Every fluent step checks its arguments and the
  chain state *at the call site* and raises a typed
  :class:`~repro.errors.ScenarioError` on contradictions (clients
  before any AP, overlapping AP ids, a negative count) — never at
  ``build()`` time and never inside a sweep worker.
* **Seed reproducibility.** :meth:`ScenarioBuilder.freeze` compiles the
  chain into a :class:`CompiledChain` — a frozen, picklable value
  object. Calling it with a seed replays the steps against one
  ``make_rng(seed)`` stream in chain order, so the same chain + seed is
  always the same network, and RNG-free chains are seed-invariant.
* **Registry parity.** Generative steps call the *same* population
  helpers as the hand-written factories (:mod:`repro.sim.scenario`,
  :mod:`repro.sim.buildings`), consuming the RNG stream identically —
  a chain re-expressing a legacy factory produces a bit-identical
  ``network_fingerprint``.

Invariant checks from :mod:`repro.sim.checks` attach via ``.check(...)``
and ride on the built scenario into fleet workers and timeline replays.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import PathLossModel, SimulationConfig, make_rng
from ..net.channels import ChannelPlan
from ..net.topology import Network
from ..errors import ScenarioError
from .buildings import FloorPlan, populate_office_floor
from .checks import InvariantCheck
from .mobility import LinearWalk
from .scenario import (
    SCENARIOS,
    Scenario,
    carrier_sense_conflict_pairs,
    populate_enterprise_aps,
    populate_quality_choice_clients,
    populate_uniform_clients,
    register_scenario,
)

__all__ = ["CompiledChain", "ScenarioBuilder", "Step", "scenario"]

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")

Position = Tuple[float, float]


@dataclass(frozen=True)
class Step:
    """One recorded builder step: an operation name plus frozen kwargs."""

    op: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a keyword dict (for the step compiler)."""
        return dict(self.params)


# ----------------------------------------------------------------------
# Step compilers: replay one recorded step against the compile state.
# Validation already happened in the builder, so these only *construct*.


@dataclass
class _CompileState:
    """Mutable state threaded through one chain replay."""

    network: Network
    rng: Any
    client_order: List[str] = field(default_factory=list)
    conflicts: Optional[List[Tuple[str, str]]] = None
    area_m: Optional[Position] = None


def _compile_ap(state, ap_id, position, tx_power_dbm):
    if tx_power_dbm is None:
        state.network.add_ap(ap_id, position=position)
    else:
        state.network.add_ap(
            ap_id, position=position, tx_power_dbm=tx_power_dbm
        )


def _compile_client(state, client_id, position):
    state.network.add_client(client_id, position=position)
    state.client_order.append(client_id)


def _compile_link(state, ap_id, client_id, snr_db):
    state.network.set_link_snr(ap_id, client_id, snr_db)


def _compile_conflicts(state, pairs):
    if state.conflicts is None:
        state.conflicts = []
    state.conflicts.extend(tuple(pair) for pair in pairs)


def _compile_no_conflicts(state):
    state.conflicts = []


def _compile_carrier_sense(state, threshold_dbm):
    if state.conflicts is None:
        state.conflicts = []
    state.conflicts.extend(
        carrier_sense_conflict_pairs(state.network, threshold_dbm)
    )


def _compile_grid_aps(state, rows, columns, spacing_m, prefix, start):
    index = start
    for row in range(rows):
        for column in range(columns):
            position = (
                (column + 0.5) * spacing_m,
                (row + 0.5) * spacing_m,
            )
            state.network.add_ap(f"{prefix}{index}", position=position)
            index += 1


def _compile_enterprise_aps(state, n_aps, area_m, jitter_sigma_m, prefix):
    populate_enterprise_aps(
        state.network,
        state.rng,
        n_aps,
        area_m,
        jitter_sigma_m=jitter_sigma_m,
        prefix=prefix,
    )
    state.area_m = area_m


def _compile_uniform_clients(
    state, n, area_m, shadowing_sigma_db, min_snr20_db, prefix, start
):
    state.client_order.extend(
        populate_uniform_clients(
            state.network,
            state.rng,
            n,
            area_m if area_m is not None else state.area_m,
            shadowing_sigma_db=shadowing_sigma_db,
            min_snr20_db=min_snr20_db,
            prefix=prefix,
            start=start,
        )
    )


def _compile_quality_choice_clients(
    state, per_ap, choices, sigma_db, prefix, start
):
    state.client_order.extend(
        populate_quality_choice_clients(
            state.network,
            state.rng,
            per_ap=per_ap,
            choices=choices,
            sigma_db=sigma_db,
            prefix=prefix,
            start=start,
        )
    )


def _ap_bounding_box(network: Network) -> Tuple[float, float, float, float]:
    xs = [network.ap(ap_id).position[0] for ap_id in network.ap_ids]
    ys = [network.ap(ap_id).position[1] for ap_id in network.ap_ids]
    return min(xs), max(xs), min(ys), max(ys)


def _compile_clients(state, n, clusters, spread_m, prefix, start):
    rng = state.rng
    min_x, max_x, min_y, max_y = _ap_bounding_box(state.network)
    centers: Optional[List[Position]] = None
    if clusters is not None:
        centers = [
            (
                float(rng.uniform(min_x, max_x)),
                float(rng.uniform(min_y, max_y)),
            )
            for _ in range(clusters)
        ]
    for index in range(n):
        if centers is None:
            position = (
                float(rng.uniform(min_x, max_x)),
                float(rng.uniform(min_y, max_y)),
            )
        else:
            center = centers[int(rng.integers(0, len(centers)))]
            position = (
                center[0] + float(rng.normal(0.0, spread_m)),
                center[1] + float(rng.normal(0.0, spread_m)),
            )
        client_id = f"{prefix}{start + index}"
        state.network.add_client(client_id, position=position)
        state.client_order.append(client_id)


def _compile_mobility(state, walk, n_clients, road_y, prefix, start):
    for index in range(n_clients):
        if n_clients == 1:
            time_s = 0.0
        else:
            time_s = walk.duration_s * index / (n_clients - 1)
        position = (walk.distance_at(time_s), road_y)
        client_id = f"{prefix}{start + index}"
        state.network.add_client(client_id, position=position)
        state.client_order.append(client_id)


def _compile_impairment(state, snr_offset_db, clients):
    network = state.network
    targets = clients if clients is not None else tuple(network.client_ids)
    for client_id in targets:
        for ap_id in network.ap_ids:
            if network.has_link(ap_id, client_id):
                snr = network.link_budget(ap_id, client_id).snr20_db
                network.set_link_snr(ap_id, client_id, snr + snr_offset_db)


def _compile_office(state, rooms_x, rooms_y, clients_per_room, n_aps, floor):
    plan = FloorPlan(
        rooms_x, rooms_y, floor.room_size_m, floor.wall_loss_db
    )
    state.client_order.extend(
        populate_office_floor(
            state.network,
            state.rng,
            plan,
            state.network.config.path_loss,
            n_aps,
            clients_per_room,
        )
    )
    state.area_m = (plan.width_m, plan.height_m)


_STEP_COMPILERS = {
    "ap": _compile_ap,
    "client": _compile_client,
    "link": _compile_link,
    "conflicts": _compile_conflicts,
    "no_conflicts": _compile_no_conflicts,
    "carrier_sense_conflicts": _compile_carrier_sense,
    "grid_aps": _compile_grid_aps,
    "enterprise_aps": _compile_enterprise_aps,
    "uniform_clients": _compile_uniform_clients,
    "quality_choice_clients": _compile_quality_choice_clients,
    "clients": _compile_clients,
    "mobility": _compile_mobility,
    "impairment": _compile_impairment,
    "office": _compile_office,
}


@dataclass(frozen=True)
class CompiledChain:
    """A frozen builder chain: the registrable, picklable factory.

    Calling the chain replays its steps against a fresh network and one
    ``make_rng(seed)`` stream, in chain order. Instances compare by
    value, so re-registering an identical chain under the same name is
    a no-op, while rebinding the name to a different chain fails like
    any other registry collision. Pickles by its dataclass fields
    (plain values, frozen checks) — the contract RL005 enforces.
    """

    name: str
    description: str = ""
    steps: Tuple[Step, ...] = ()
    checks: Tuple[InvariantCheck, ...] = ()
    n_channels: Optional[int] = None
    order: Optional[Tuple[str, ...]] = None
    path_loss: Optional[Tuple[Tuple[str, float], ...]] = None
    uses_rng: bool = False

    def __call__(self, seed: int = 0) -> Scenario:
        """Build the scenario for ``seed`` (deterministic replay)."""
        rng = make_rng(seed)
        if self.path_loss is not None:
            config = SimulationConfig(
                seed=int(seed),
                path_loss=PathLossModel(**dict(self.path_loss)),
            )
            network = Network(config)
        else:
            network = Network()
        state = _CompileState(network=network, rng=rng)
        for step in self.steps:
            _STEP_COMPILERS[step.op](state, **step.kwargs())
        if state.conflicts is not None:
            network.set_explicit_conflicts(state.conflicts)
        plan = ChannelPlan()
        if self.n_channels is not None:
            plan = plan.subset(self.n_channels)
        instance_name = (
            f"{self.name}_{seed}" if self.uses_rng else self.name
        )
        built = Scenario(
            name=instance_name,
            network=network,
            plan=plan,
            client_order=(
                list(self.order)
                if self.order is not None
                else list(state.client_order)
            ),
            description=self.description,
            checks=self.checks,
        )
        built._factory = functools.partial(self, int(seed))
        return built


class ScenarioBuilder:
    """Fluent, eagerly validated scenario construction.

    Every step method validates its arguments against the chain so far,
    records the step, and returns ``self`` for chaining. Terminal
    methods: :meth:`freeze` (the compiled value object),
    :meth:`build` (one scenario instance), :meth:`register` (into
    ``SCENARIOS``).
    """

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ScenarioError(
                f"scenario name must match {_NAME_RE.pattern}, got {name!r}"
            )
        self._name = name
        self._steps: List[Step] = []
        self._checks: List[InvariantCheck] = []
        self._description = ""
        self._n_channels: Optional[int] = None
        self._order: Optional[Tuple[str, ...]] = None
        self._path_loss: Optional[Tuple[Tuple[str, float], ...]] = None
        self._uses_rng = False
        self._aps: Dict[str, bool] = {}  # id → has a position
        self._clients: Dict[str, bool] = {}
        self._links: set = set()
        self._conflict_mode: Optional[str] = None
        self._has_area = False
        self._has_office = False

    # -- internal helpers -------------------------------------------------

    def _record(self, op: str, **params: Any) -> "ScenarioBuilder":
        self._steps.append(Step(op=op, params=tuple(params.items())))
        return self

    def _fail(self, message: str) -> None:
        raise ScenarioError(f"scenario {self._name!r}: {message}")

    def _require_no_office(self, step: str) -> None:
        if self._has_office:
            self._fail(
                f"{step} cannot follow office(); the office step owns "
                "the whole floor"
            )

    def _require_aps(self, step: str) -> None:
        if not self._aps:
            self._fail(f"{step} needs at least one AP declared first")

    def _require_positioned_aps(self, step: str) -> None:
        self._require_aps(step)
        unplaced = [a for a, placed in self._aps.items() if not placed]
        if unplaced:
            self._fail(
                f"{step} needs every AP positioned; missing positions: "
                f"{', '.join(sorted(unplaced))}"
            )

    def _add_ap_id(self, ap_id: str, placed: bool, step: str) -> None:
        if not isinstance(ap_id, str) or not ap_id:
            self._fail(f"{step}: AP id must be a non-empty string")
        if ap_id in self._aps:
            self._fail(
                f"{step}: AP id {ap_id!r} already declared "
                "(overlapping AP steps)"
            )
        if ap_id in self._clients:
            self._fail(f"{step}: id {ap_id!r} is already a client")
        self._aps[ap_id] = placed

    def _add_client_id(self, client_id: str, step: str) -> None:
        if not isinstance(client_id, str) or not client_id:
            self._fail(f"{step}: client id must be a non-empty string")
        if client_id in self._clients:
            self._fail(
                f"{step}: client id {client_id!r} already declared "
                "(overlapping client steps)"
            )
        if client_id in self._aps:
            self._fail(f"{step}: id {client_id!r} is already an AP")
        self._clients[client_id] = True

    def _positive_int(self, value: Any, what: str, step: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            self._fail(f"{step}: {what} must be a positive int, got {value!r}")
        return value

    # -- configuration steps ----------------------------------------------

    def path_loss(
        self,
        exponent: float = 3.0,
        pl0_db: float = 46.7,
        reference_m: float = 1.0,
    ) -> "ScenarioBuilder":
        """Configure the log-distance path-loss model (geometry chains).

        Must precede any AP/client step — the model is part of the
        network's construction, not a patch over it.
        """
        self._require_no_office("path_loss()")
        if self._path_loss is not None:
            self._fail("path_loss() declared twice")
        if self._aps or self._clients:
            self._fail("path_loss() must precede AP/client steps")
        if exponent <= 0 or reference_m <= 0:
            self._fail(
                "path_loss(): exponent and reference_m must be positive"
            )
        self._path_loss = (
            ("pl0_db", float(pl0_db)),
            ("exponent", float(exponent)),
            ("reference_m", float(reference_m)),
        )
        return self

    def describe(self, text: str) -> "ScenarioBuilder":
        """Set the scenario description (shown in CLI listings)."""
        self._description = str(text)
        return self

    def channels(self, n_basic: int) -> "ScenarioBuilder":
        """Restrict the channel plan to the first ``n_basic`` channels."""
        if self._n_channels is not None:
            self._fail("channels() declared twice")
        if not isinstance(n_basic, int) or not 1 <= n_basic <= 12:
            self._fail(
                f"channels(): n_basic must be an int in [1, 12], "
                f"got {n_basic!r}"
            )
        self._n_channels = n_basic
        return self

    def check(self, invariant: InvariantCheck) -> "ScenarioBuilder":
        """Attach an invariant check (see :mod:`repro.sim.checks`)."""
        if not isinstance(invariant, InvariantCheck):
            self._fail(
                f"check() takes an InvariantCheck, got "
                f"{type(invariant).__name__}"
            )
        self._checks.append(invariant)
        return self

    def order(self, *client_ids: str) -> "ScenarioBuilder":
        """Fix the client arrival order (defaults to insertion order)."""
        if self._order is not None:
            self._fail("order() declared twice")
        if not client_ids:
            self._fail("order() needs at least one client id")
        if len(set(client_ids)) != len(client_ids):
            self._fail("order() ids must be unique")
        unknown = [c for c in client_ids if c not in self._clients]
        if unknown:
            self._fail(
                f"order() references unknown clients: "
                f"{', '.join(sorted(unknown))}"
            )
        self._order = tuple(client_ids)
        return self

    # -- explicit construction steps --------------------------------------

    def ap(
        self,
        ap_id: str,
        position: Optional[Position] = None,
        tx_power_dbm: Optional[float] = None,
    ) -> "ScenarioBuilder":
        """Add one AP, optionally positioned."""
        self._require_no_office("ap()")
        self._add_ap_id(ap_id, position is not None, "ap()")
        return self._record(
            "ap",
            ap_id=ap_id,
            position=tuple(position) if position is not None else None,
            tx_power_dbm=(
                float(tx_power_dbm) if tx_power_dbm is not None else None
            ),
        )

    def client(
        self, client_id: str, position: Optional[Position] = None
    ) -> "ScenarioBuilder":
        """Add one client, optionally positioned."""
        self._require_no_office("client()")
        self._require_aps("client()")
        self._add_client_id(client_id, "client()")
        return self._record(
            "client",
            client_id=client_id,
            position=tuple(position) if position is not None else None,
        )

    def link(
        self, ap_id: str, client_id: str, snr_db: float
    ) -> "ScenarioBuilder":
        """Pin one AP↔client link SNR (20 MHz per-subcarrier, dB)."""
        self._require_no_office("link()")
        if ap_id not in self._aps:
            self._fail(f"link(): unknown AP {ap_id!r}")
        if client_id not in self._clients:
            self._fail(f"link(): unknown client {client_id!r}")
        if (ap_id, client_id) in self._links:
            self._fail(f"link(): ({ap_id!r}, {client_id!r}) pinned twice")
        self._links.add((ap_id, client_id))
        return self._record(
            "link", ap_id=ap_id, client_id=client_id, snr_db=float(snr_db)
        )

    def conflicts(self, *pairs: Tuple[str, str]) -> "ScenarioBuilder":
        """Declare explicit AP interference edges."""
        self._require_no_office("conflicts()")
        if self._conflict_mode == "carrier":
            self._fail(
                "conflicts() contradicts carrier_sense_conflicts(); "
                "pick one interference source"
            )
        if not pairs:
            self._fail("conflicts() needs at least one pair")
        for pair in pairs:
            if len(pair) != 2:
                self._fail(f"conflicts(): {pair!r} is not a pair")
            ap_a, ap_b = pair
            if ap_a == ap_b:
                self._fail(f"conflicts(): {ap_a!r} cannot conflict itself")
            for ap_id in (ap_a, ap_b):
                if ap_id not in self._aps:
                    self._fail(f"conflicts(): unknown AP {ap_id!r}")
        self._conflict_mode = "explicit"
        return self._record(
            "conflicts", pairs=tuple(tuple(pair) for pair in pairs)
        )

    def no_conflicts(self) -> "ScenarioBuilder":
        """Declare the interference graph empty (no contention)."""
        self._require_no_office("no_conflicts()")
        if self._conflict_mode is not None:
            self._fail("no_conflicts() contradicts earlier conflict steps")
        self._conflict_mode = "explicit"
        return self._record("no_conflicts")

    def carrier_sense_conflicts(
        self, threshold_dbm: float = -82.0
    ) -> "ScenarioBuilder":
        """Derive AP conflicts by carrier sense over the geometry.

        Snapshot semantics: edges are computed at this point in the
        chain, over the APs declared so far.
        """
        self._require_no_office("carrier_sense_conflicts()")
        if self._conflict_mode == "explicit":
            self._fail(
                "carrier_sense_conflicts() contradicts explicit "
                "conflict steps; pick one interference source"
            )
        self._require_positioned_aps("carrier_sense_conflicts()")
        self._conflict_mode = "carrier"
        return self._record(
            "carrier_sense_conflicts", threshold_dbm=float(threshold_dbm)
        )

    # -- generative steps --------------------------------------------------

    def grid_aps(
        self,
        rows: int,
        columns: int,
        spacing_m: float = 20.0,
        prefix: str = "AP",
        start: int = 1,
    ) -> "ScenarioBuilder":
        """Place ``rows × columns`` APs on a regular grid (row-major)."""
        self._require_no_office("grid_aps()")
        rows = self._positive_int(rows, "rows", "grid_aps()")
        columns = self._positive_int(columns, "columns", "grid_aps()")
        if spacing_m <= 0:
            self._fail("grid_aps(): spacing_m must be positive")
        for index in range(rows * columns):
            self._add_ap_id(f"{prefix}{start + index}", True, "grid_aps()")
        return self._record(
            "grid_aps",
            rows=rows,
            columns=columns,
            spacing_m=float(spacing_m),
            prefix=prefix,
            start=start,
        )

    def enterprise_aps(
        self,
        n_aps: int,
        area_m: Position = (80.0, 60.0),
        jitter_sigma_m: float = 3.0,
        prefix: str = "AP",
    ) -> "ScenarioBuilder":
        """Place APs on a jittered grid over ``area_m`` (uses the RNG)."""
        self._require_no_office("enterprise_aps()")
        n_aps = self._positive_int(n_aps, "n_aps", "enterprise_aps()")
        if area_m[0] <= 0 or area_m[1] <= 0:
            self._fail("enterprise_aps(): area_m sides must be positive")
        for index in range(n_aps):
            self._add_ap_id(
                f"{prefix}{index + 1}", True, "enterprise_aps()"
            )
        self._uses_rng = True
        self._has_area = True
        return self._record(
            "enterprise_aps",
            n_aps=n_aps,
            area_m=(float(area_m[0]), float(area_m[1])),
            jitter_sigma_m=float(jitter_sigma_m),
            prefix=prefix,
        )

    def uniform_clients(
        self,
        n: int,
        shadowing_sigma_db: float = 4.0,
        min_snr20_db: float = -8.0,
        prefix: str = "c",
        start: int = 1,
        area_m: Optional[Position] = None,
    ) -> "ScenarioBuilder":
        """Drop clients uniformly over the area, pin shadowed links."""
        self._require_no_office("uniform_clients()")
        self._require_positioned_aps("uniform_clients()")
        n = self._positive_int(n, "n", "uniform_clients()")
        if area_m is None and not self._has_area:
            self._fail(
                "uniform_clients() needs an area: pass area_m or place "
                "APs with enterprise_aps() first"
            )
        for index in range(n):
            self._add_client_id(f"{prefix}{index + start}", "uniform_clients()")
        self._uses_rng = True
        return self._record(
            "uniform_clients",
            n=n,
            area_m=(
                (float(area_m[0]), float(area_m[1]))
                if area_m is not None
                else None
            ),
            shadowing_sigma_db=float(shadowing_sigma_db),
            min_snr20_db=float(min_snr20_db),
            prefix=prefix,
            start=start,
        )

    def quality_choice_clients(
        self,
        per_ap: int = 2,
        choices: Tuple[float, ...] = (1.0, 4.0, 8.0, 14.0, 20.0, 26.0),
        sigma_db: float = 1.0,
        prefix: str = "c",
        start: int = 0,
    ) -> "ScenarioBuilder":
        """Attach palette-quality clients per AP (Fig 14 construction)."""
        self._require_no_office("quality_choice_clients()")
        self._require_aps("quality_choice_clients()")
        per_ap = self._positive_int(per_ap, "per_ap", "quality_choice_clients()")
        if not choices:
            self._fail("quality_choice_clients(): choices must be non-empty")
        counter = start
        for _ in self._aps:
            for _ in range(per_ap):
                self._add_client_id(
                    f"{prefix}{counter}", "quality_choice_clients()"
                )
                counter += 1
        self._uses_rng = True
        return self._record(
            "quality_choice_clients",
            per_ap=per_ap,
            choices=tuple(float(c) for c in choices),
            sigma_db=float(sigma_db),
            prefix=prefix,
            start=start,
        )

    def clients(
        self,
        n: int,
        clusters: Optional[int] = None,
        spread_m: float = 8.0,
        prefix: str = "c",
        start: int = 0,
    ) -> "ScenarioBuilder":
        """Drop clients over the AP bounding box, optionally clustered.

        ``clusters=k`` draws k hotspot centres first, then spreads the
        clients around them with ``spread_m`` of Gaussian scatter — the
        flash-crowd shape. Links form geometrically (no pinning).
        """
        self._require_no_office("clients()")
        self._require_positioned_aps("clients()")
        n = self._positive_int(n, "n", "clients()")
        if clusters is not None:
            clusters = self._positive_int(clusters, "clusters", "clients()")
            if clusters > n:
                self._fail(
                    f"clients(): {clusters} clusters for {n} clients"
                )
        if spread_m <= 0:
            self._fail("clients(): spread_m must be positive")
        for index in range(n):
            self._add_client_id(f"{prefix}{start + index}", "clients()")
        self._uses_rng = True
        return self._record(
            "clients",
            n=n,
            clusters=clusters,
            spread_m=float(spread_m),
            prefix=prefix,
            start=start,
        )

    def mobility(
        self,
        walk: LinearWalk,
        n_clients: int,
        road_y: float = 0.0,
        prefix: str = "veh",
        start: int = 0,
    ) -> "ScenarioBuilder":
        """Drop clients along a walk's trajectory (vehicular drive-by).

        Client *i* sits where the walk is at time ``i/(n-1)`` of its
        duration — a deterministic snapshot of a vehicle passing the
        deployment on the ``road_y`` line.
        """
        self._require_no_office("mobility()")
        self._require_positioned_aps("mobility()")
        if not isinstance(walk, LinearWalk):
            self._fail(
                f"mobility() takes a LinearWalk, got {type(walk).__name__}"
            )
        n_clients = self._positive_int(n_clients, "n_clients", "mobility()")
        for index in range(n_clients):
            self._add_client_id(f"{prefix}{start + index}", "mobility()")
        return self._record(
            "mobility",
            walk=walk,
            n_clients=n_clients,
            road_y=float(road_y),
            prefix=prefix,
            start=start,
        )

    def impairment(
        self,
        snr_offset_db: float,
        clients: Optional[Tuple[str, ...]] = None,
    ) -> "ScenarioBuilder":
        """Degrade (or boost) every defined link of the targeted clients.

        Pins ``current budget + snr_offset_db`` on each existing link —
        legacy-802.11a-grade hardware, interference hot zones.
        """
        self._require_no_office("impairment()")
        if clients is not None:
            if not clients:
                self._fail("impairment(): empty client list")
            unknown = [c for c in clients if c not in self._clients]
            if unknown:
                self._fail(
                    f"impairment(): unknown clients: "
                    f"{', '.join(sorted(unknown))}"
                )
        elif not self._clients:
            self._fail("impairment() needs clients declared first")
        return self._record(
            "impairment",
            snr_offset_db=float(snr_offset_db),
            clients=tuple(clients) if clients is not None else None,
        )

    def office(
        self,
        rooms_x: int = 4,
        rooms_y: int = 3,
        clients_per_room: int = 1,
        n_aps: int = 3,
        floor: FloorPlan = FloorPlan(),
    ) -> "ScenarioBuilder":
        """Build a whole office floor (corridor APs, per-room clients).

        A composite step: it owns the path-loss model (indoor exponent
        2.8), the geometry, the links, and the wall-aware conflicts, so
        it must be the chain's only construction step.
        """
        if self._has_office:
            self._fail("office() declared twice")
        if self._aps or self._clients:
            self._fail("office() must be the first construction step")
        if self._path_loss is not None:
            self._fail("office() owns the path-loss model; drop path_loss()")
        if self._conflict_mode is not None:
            self._fail("office() owns the conflict graph")
        rooms_x = self._positive_int(rooms_x, "rooms_x", "office()")
        rooms_y = self._positive_int(rooms_y, "rooms_y", "office()")
        n_aps = self._positive_int(n_aps, "n_aps", "office()")
        if not isinstance(clients_per_room, int) or clients_per_room < 0:
            self._fail("office(): clients_per_room must be a non-negative int")
        counter = 0
        for index in range(n_aps):
            self._add_ap_id(f"AP{index + 1}", True, "office()")
        for _ in range(rooms_x * rooms_y * clients_per_room):
            self._add_client_id(f"c{counter}", "office()")
            counter += 1
        self._has_office = True
        self._has_area = True
        self._uses_rng = True
        self._conflict_mode = "office"
        self._path_loss = (("exponent", 2.8),)
        return self._record(
            "office",
            rooms_x=rooms_x,
            rooms_y=rooms_y,
            clients_per_room=clients_per_room,
            n_aps=n_aps,
            floor=floor,
        )

    # -- terminals ---------------------------------------------------------

    def freeze(self) -> "CompiledChain":
        """Compile the chain into its frozen, picklable factory."""
        if not self._aps:
            self._fail("chain declares no APs")
        if not self._clients:
            self._fail("chain declares no clients")
        if self._order is not None and set(self._order) != set(self._clients):
            missing = sorted(set(self._clients) - set(self._order))
            self._fail(
                f"order() must cover every client; missing: "
                f"{', '.join(missing)}"
            )
        return CompiledChain(
            name=self._name,
            description=self._description,
            steps=tuple(self._steps),
            checks=tuple(self._checks),
            n_channels=self._n_channels,
            order=self._order,
            path_loss=self._path_loss,
            uses_rng=self._uses_rng,
        )

    def build(self, seed: int = 0) -> Scenario:
        """Compile and build one scenario instance for ``seed``."""
        return self.freeze()(seed)

    def register(self) -> CompiledChain:
        """Compile the chain and register it into ``SCENARIOS``.

        Re-registering a value-identical chain under the same name is a
        no-op (returns the already registered chain), so modules that
        define scenario libraries are import-idempotent.
        """
        chain = self.freeze()
        existing = SCENARIOS.get(chain.name)
        if isinstance(existing, CompiledChain) and existing == chain:
            return existing
        register_scenario(chain.name, chain)
        return chain


def scenario(name: str) -> ScenarioBuilder:
    """Start a fluent scenario chain: ``scenario("atrium").grid_aps(...)``."""
    return ScenarioBuilder(name)
