"""First-class invariant checks over scenarios and sweep results.

A check is a small frozen dataclass — picklable by construction, so it
rides inside :class:`~repro.fleet.jobs.CompiledScenario` payloads into
worker processes — that asserts either a *structural* property of a
built scenario (hidden terminals present, every client admissible, the
channel supply genuinely scarce) or a *result* property of one sweep
cell's deterministic metrics (a Jain fairness floor, a throughput
floor).

Checks make a scenario an executable test specification: the fleet
executor evaluates every check attached to a scenario inside the worker
and records the verdicts on the :class:`~repro.fleet.results.JobResult`
(``status`` stays ``"ok"`` — a violated invariant is data, not a
crash), the journal persists them, and ``repro sweep`` summaries
surface the violations.

The :data:`CHECKS` registry maps names to the public factories so
serialized experiment specs and docs can reference checks by string,
mirroring ``SCENARIOS`` and ``ALGORITHMS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..errors import ScenarioError

__all__ = [
    "CHECKS",
    "AllClientsAdmissible",
    "ChannelsScarce",
    "CheckResult",
    "HasHiddenTerminals",
    "InvariantCheck",
    "MaxInterferenceDegree",
    "MinFairness",
    "MinInterferenceDegree",
    "MinSnrSpread",
    "MinTotalThroughput",
    "all_clients_admissible",
    "channels_scarce",
    "evaluate_network_checks",
    "evaluate_result_checks",
    "has_hidden_terminals",
    "max_interference_degree",
    "min_fairness",
    "min_interference_degree",
    "min_snr_spread",
    "min_total_mbps",
    "register_check",
]


@dataclass(frozen=True)
class CheckResult:
    """Verdict of one check over one scenario or one job's metrics."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (journalled with the job result)."""
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass(frozen=True)
class InvariantCheck:
    """Base class for scenario invariants.

    Subclasses set ``scope`` to ``"network"`` (evaluated against the
    built scenario before the algorithm runs) or ``"result"``
    (evaluated against the job's deterministic metrics afterwards) and
    implement the matching ``evaluate`` method. Instances are frozen
    dataclasses of plain numbers, so they pickle by reference to their
    module-level class — the same contract RL005 enforces for registry
    factories.
    """

    scope = "network"

    @property
    def name(self) -> str:
        """Deterministic display name (class plus parameters)."""
        return type(self).__name__

    def evaluate(self, scenario) -> CheckResult:
        """Verdict over a built scenario (``scope == "network"``)."""
        raise NotImplementedError

    def evaluate_result(self, metrics: Mapping[str, float]) -> CheckResult:
        """Verdict over job metrics (``scope == "result"``)."""
        raise NotImplementedError

    def _verdict(self, passed: bool, detail: str) -> CheckResult:
        return CheckResult(name=self.name, passed=bool(passed), detail=detail)


# ----------------------------------------------------------------------
# Result-scope checks (per-job deterministic metrics).


@dataclass(frozen=True)
class MinFairness(InvariantCheck):
    """Jain fairness index of the per-AP throughputs must reach a floor."""

    threshold: float = 0.5
    scope = "result"

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ScenarioError(
                f"min_fairness threshold must be in [0, 1], "
                f"got {self.threshold}"
            )

    @property
    def name(self) -> str:
        """E.g. ``min_fairness(0.7)``."""
        return f"min_fairness({self.threshold:g})"

    def evaluate_result(self, metrics: Mapping[str, float]) -> CheckResult:
        """Pass when ``jain >= threshold``."""
        jain = float(metrics.get("jain", 0.0))
        return self._verdict(
            jain >= self.threshold,
            f"jain={jain:.4f} vs floor {self.threshold:g}",
        )


@dataclass(frozen=True)
class MinTotalThroughput(InvariantCheck):
    """Aggregate network throughput must reach a floor (Mbps)."""

    threshold_mbps: float = 1.0
    scope = "result"

    def __post_init__(self) -> None:
        if self.threshold_mbps < 0.0:
            raise ScenarioError(
                f"min_total_mbps floor must be non-negative, "
                f"got {self.threshold_mbps}"
            )

    @property
    def name(self) -> str:
        """E.g. ``min_total_mbps(5)``."""
        return f"min_total_mbps({self.threshold_mbps:g})"

    def evaluate_result(self, metrics: Mapping[str, float]) -> CheckResult:
        """Pass when ``total_mbps >= threshold_mbps``."""
        total = float(metrics.get("total_mbps", 0.0))
        return self._verdict(
            total >= self.threshold_mbps,
            f"total={total:.2f} Mbps vs floor {self.threshold_mbps:g}",
        )


# ----------------------------------------------------------------------
# Network-scope checks (structure of the built scenario).


def _interference_graph(scenario):
    from ..net.interference import build_interference_graph

    return build_interference_graph(scenario.network)


@dataclass(frozen=True)
class HasHiddenTerminals(InvariantCheck):
    """The AP conflict graph must contain an open triple.

    Two APs that both contend with a middle AP but not with each other
    are mutually hidden: neither defers to the other's transmissions,
    so the middle cell sees collisions carrier sense cannot prevent —
    the regime where allocation quality matters most.
    """

    @property
    def name(self) -> str:
        """``has_hidden_terminals()``."""
        return "has_hidden_terminals()"

    def evaluate(self, scenario) -> CheckResult:
        """Pass when some AP pair shares a neighbour without an edge."""
        graph = _interference_graph(scenario)
        for middle in graph.nodes:
            neighbours = sorted(graph.neighbors(middle))
            for i, left in enumerate(neighbours):
                for right in neighbours[i + 1 :]:
                    if not graph.has_edge(left, right):
                        return self._verdict(
                            True,
                            f"{left} and {right} are hidden from each "
                            f"other behind {middle}",
                        )
        return self._verdict(False, "no open triple in the conflict graph")


@dataclass(frozen=True)
class MinInterferenceDegree(InvariantCheck):
    """The conflict graph's maximum degree Δ must reach a floor.

    The allocator's approximation guarantee degrades as O(1/(Δ+1)), so
    adversarial scenarios pin a minimum Δ to stay in the hard regime.
    """

    degree: int = 1

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise ScenarioError(
                f"min_interference_degree must be non-negative, "
                f"got {self.degree}"
            )

    @property
    def name(self) -> str:
        """E.g. ``min_interference_degree(3)``."""
        return f"min_interference_degree({self.degree})"

    def evaluate(self, scenario) -> CheckResult:
        """Pass when ``max_degree(graph) >= degree``."""
        from ..net.interference import max_degree

        delta = max_degree(_interference_graph(scenario))
        return self._verdict(
            delta >= self.degree,
            f"max degree {delta} vs floor {self.degree}",
        )


@dataclass(frozen=True)
class MaxInterferenceDegree(InvariantCheck):
    """The conflict graph's maximum degree Δ must stay under a ceiling."""

    degree: int = 4

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise ScenarioError(
                f"max_interference_degree must be non-negative, "
                f"got {self.degree}"
            )

    @property
    def name(self) -> str:
        """E.g. ``max_interference_degree(4)``."""
        return f"max_interference_degree({self.degree})"

    def evaluate(self, scenario) -> CheckResult:
        """Pass when ``max_degree(graph) <= degree``."""
        from ..net.interference import max_degree

        delta = max_degree(_interference_graph(scenario))
        return self._verdict(
            delta <= self.degree,
            f"max degree {delta} vs ceiling {self.degree}",
        )


@dataclass(frozen=True)
class ChannelsScarce(InvariantCheck):
    """The 20 MHz channel supply must not trivially colour the graph.

    With ``n_basic > Δ`` every AP can take a private channel and the
    allocation problem collapses; a scarce plan (``n_basic <= Δ``)
    forces genuine contention — the Fig 11/14 regime.
    """

    @property
    def name(self) -> str:
        """``channels_scarce()``."""
        return "channels_scarce()"

    def evaluate(self, scenario) -> CheckResult:
        """Pass when ``plan.n_basic <= max_degree(graph)``."""
        from ..net.interference import max_degree

        delta = max_degree(_interference_graph(scenario))
        n_basic = scenario.plan.n_basic
        return self._verdict(
            n_basic <= delta,
            f"{n_basic} basic channels vs max degree {delta}",
        )


@dataclass(frozen=True)
class AllClientsAdmissible(InvariantCheck):
    """Every client must have at least one AP above the MCS-0 floor."""

    min_snr20_db: float = -5.0

    @property
    def name(self) -> str:
        """E.g. ``all_clients_admissible(-5)``."""
        return f"all_clients_admissible({self.min_snr20_db:g})"

    def evaluate(self, scenario) -> CheckResult:
        """Pass when no client has an empty serving set."""
        network = scenario.network
        stranded = [
            client_id
            for client_id in network.client_ids
            if not network.candidate_aps(client_id, self.min_snr20_db)
        ]
        if stranded:
            return self._verdict(
                False, f"stranded clients: {', '.join(stranded)}"
            )
        return self._verdict(
            True, f"all {len(network.client_ids)} clients admissible"
        )


@dataclass(frozen=True)
class MinSnrSpread(InvariantCheck):
    """The best and worst defined links must differ by at least ``spread_db``.

    A wide quality mix — excellent 802.11n links next to legacy-grade
    ones (paper Sec 6.4) — is what makes per-cell width choices and
    quality grouping non-trivial.
    """

    spread_db: float = 10.0

    def __post_init__(self) -> None:
        if self.spread_db < 0.0:
            raise ScenarioError(
                f"min_snr_spread must be non-negative, got {self.spread_db}"
            )

    @property
    def name(self) -> str:
        """E.g. ``min_snr_spread(15)``."""
        return f"min_snr_spread({self.spread_db:g})"

    def evaluate(self, scenario) -> CheckResult:
        """Pass when max−min link SNR over defined links ≥ the spread."""
        network = scenario.network
        snrs: List[float] = []
        for client_id in network.client_ids:
            for ap_id in network.ap_ids:
                if network.has_link(ap_id, client_id):
                    snrs.append(
                        float(network.link_budget(ap_id, client_id).snr20_db)
                    )
        if not snrs:
            return self._verdict(False, "no defined links")
        spread = max(snrs) - min(snrs)
        return self._verdict(
            spread >= self.spread_db,
            f"spread {spread:.1f} dB vs floor {self.spread_db:g}",
        )


# ----------------------------------------------------------------------
# Public factories (what builder chains and the registry expose).


def min_fairness(threshold: float) -> MinFairness:
    """A result check: Jain fairness over per-AP throughputs ≥ floor."""
    return MinFairness(threshold=float(threshold))


def min_total_mbps(threshold_mbps: float) -> MinTotalThroughput:
    """A result check: aggregate throughput ≥ floor (Mbps)."""
    return MinTotalThroughput(threshold_mbps=float(threshold_mbps))


def has_hidden_terminals() -> HasHiddenTerminals:
    """A network check: the conflict graph contains an open triple."""
    return HasHiddenTerminals()


def min_interference_degree(degree: int) -> MinInterferenceDegree:
    """A network check: conflict-graph Δ at least ``degree``."""
    return MinInterferenceDegree(degree=int(degree))


def max_interference_degree(degree: int) -> MaxInterferenceDegree:
    """A network check: conflict-graph Δ at most ``degree``."""
    return MaxInterferenceDegree(degree=int(degree))


def channels_scarce() -> ChannelsScarce:
    """A network check: fewer basic channels than Δ+1 (real contention)."""
    return ChannelsScarce()


def all_clients_admissible(min_snr20_db: float = -5.0) -> AllClientsAdmissible:
    """A network check: every client has a non-empty serving set."""
    return AllClientsAdmissible(min_snr20_db=float(min_snr20_db))


def min_snr_spread(spread_db: float) -> MinSnrSpread:
    """A network check: link qualities span at least ``spread_db`` dB."""
    return MinSnrSpread(spread_db=float(spread_db))


# Name → factory, mirroring SCENARIOS/ALGORITHMS. Keys are the names
# docs and serialized specs use; values are the module-level factories
# above (picklable, RL005-clean).
CHECKS: Dict[str, Callable[..., InvariantCheck]] = {
    "min_fairness": min_fairness,
    "min_total_mbps": min_total_mbps,
    "has_hidden_terminals": has_hidden_terminals,
    "min_interference_degree": min_interference_degree,
    "max_interference_degree": max_interference_degree,
    "channels_scarce": channels_scarce,
    "all_clients_admissible": all_clients_admissible,
    "min_snr_spread": min_snr_spread,
}


def register_check(name: str, factory: Callable[..., InvariantCheck]) -> None:
    """Register a check ``factory`` under ``name``.

    Same contract as :func:`~repro.sim.scenario.register_scenario`:
    re-registering the identical factory is a no-op, rebinding a name
    raises :class:`ScenarioError`.
    """
    existing = CHECKS.get(name)
    if existing is not None and existing is not factory:
        raise ScenarioError(
            f"check name {name!r} is already registered to "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    CHECKS[name] = factory


def evaluate_network_checks(scenario) -> List[CheckResult]:
    """Run a scenario's network-scope checks against its built state.

    Evaluation failures (a geometric check on a geometry-free network,
    say) become failed verdicts, never exceptions — a bad check must
    mark the job, not crash the worker.
    """
    from ..errors import ReproError

    verdicts: List[CheckResult] = []
    for check in getattr(scenario, "checks", ()):
        if check.scope != "network":
            continue
        try:
            verdicts.append(check.evaluate(scenario))
        except ReproError as exc:
            verdicts.append(
                CheckResult(
                    name=check.name,
                    passed=False,
                    detail=f"check error: {exc}",
                )
            )
    return verdicts


def evaluate_result_checks(
    checks: Sequence[InvariantCheck], metrics: Mapping[str, float]
) -> List[CheckResult]:
    """Run result-scope checks against one job's deterministic metrics."""
    from ..errors import ReproError

    verdicts: List[CheckResult] = []
    for check in checks:
        if check.scope != "result":
            continue
        try:
            verdicts.append(check.evaluate_result(metrics))
        except ReproError as exc:
            verdicts.append(
                CheckResult(
                    name=check.name,
                    passed=False,
                    detail=f"check error: {exc}",
                )
            )
    return verdicts
