"""Indoor propagation with walls: the office-floor substrate.

The paper's testbed "contains both indoor and outdoor links"; enterprise
WLANs live on office floors where drywall dominates the link budget. A
:class:`FloorPlan` lays rooms on a grid and charges a per-wall loss on
top of log-distance path loss — the multi-wall (COST 231-style) model.
:func:`office_floor` builds a ready-to-configure scenario from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..config import PathLossModel, SimulationConfig, make_rng
from ..errors import ConfigurationError
from ..link.budget import LinkBudget
from ..net.channels import ChannelPlan
from ..net.topology import Network
from .scenario import Scenario, _finish, register_scenario

__all__ = ["FloorPlan", "office_floor", "populate_office_floor"]

Position = Tuple[float, float]


@dataclass(frozen=True)
class FloorPlan:
    """A rectangular grid of equally sized rooms.

    Attributes
    ----------
    rooms_x, rooms_y:
        Grid dimensions.
    room_size_m:
        Side length of each (square) room.
    wall_loss_db:
        Attenuation per interior wall crossed (drywall ~3-5 dB,
        concrete 10+).
    """

    rooms_x: int = 4
    rooms_y: int = 3
    room_size_m: float = 6.0
    wall_loss_db: float = 5.0

    def __post_init__(self) -> None:
        if self.rooms_x < 1 or self.rooms_y < 1:
            raise ConfigurationError("the floor needs at least one room")
        if self.room_size_m <= 0:
            raise ConfigurationError("room size must be positive")
        if self.wall_loss_db < 0:
            raise ConfigurationError("wall loss must be non-negative")

    @property
    def width_m(self) -> float:
        """Total floor width in metres."""
        return self.rooms_x * self.room_size_m

    @property
    def height_m(self) -> float:
        """Total floor depth in metres."""
        return self.rooms_y * self.room_size_m

    def room_center(self, room_x: int, room_y: int) -> Position:
        """Centre coordinates of room (room_x, room_y)."""
        if not (0 <= room_x < self.rooms_x and 0 <= room_y < self.rooms_y):
            raise ConfigurationError(
                f"room ({room_x}, {room_y}) outside the "
                f"{self.rooms_x}x{self.rooms_y} grid"
            )
        return (
            (room_x + 0.5) * self.room_size_m,
            (room_y + 0.5) * self.room_size_m,
        )

    def walls_between(self, a: Position, b: Position) -> int:
        """Interior walls crossed between two points (per-axis count).

        Counts the grid lines strictly between the two coordinates on
        each axis — the standard multi-wall approximation.
        """
        walls = 0
        for (low, high), count in (
            (sorted((a[0], b[0])), self.rooms_x),
            (sorted((a[1], b[1])), self.rooms_y),
        ):
            first = math.floor(low / self.room_size_m) + 1
            last = math.ceil(high / self.room_size_m) - 1
            for line in range(first, last + 1):
                if 0 < line < count:
                    walls += 1
        return max(0, walls)

    def path_loss_db(
        self, a: Position, b: Position, model: PathLossModel
    ) -> float:
        """Log-distance loss plus the per-wall penalty."""
        distance = math.hypot(a[0] - b[0], a[1] - b[1])
        return model.loss_db(distance) + self.wall_loss_db * self.walls_between(a, b)


def populate_office_floor(
    network: Network,
    rng,
    floor: FloorPlan,
    model: PathLossModel,
    n_aps: int,
    clients_per_room: int,
) -> List[str]:
    """Fill ``network`` with corridor APs and per-room clients.

    APs spread along the floor's central corridor; every room gets
    ``clients_per_room`` clients jittered around its centre (two uniform
    draws each). Links are pinned through the multi-wall model and
    AP-AP carrier sense runs through the same walls. Returns client ids
    in insertion order. Shared by :func:`office_floor` and the builder's
    ``office`` step so both consume the RNG stream identically.
    """
    config = network.config
    ap_positions: List[Position] = []
    for index in range(n_aps):
        x = (index + 0.5) / n_aps * floor.width_m
        y = floor.height_m / 2.0
        ap_positions.append((x, y))
        network.add_ap(f"AP{index + 1}", position=(x, y))

    client_order: List[str] = []
    counter = 0
    for room_x in range(floor.rooms_x):
        for room_y in range(floor.rooms_y):
            for _ in range(clients_per_room):
                client_id = f"c{counter}"
                counter += 1
                client_order.append(client_id)
                center = floor.room_center(room_x, room_y)
                jitter = (
                    float(rng.uniform(-0.3, 0.3)) * floor.room_size_m,
                    float(rng.uniform(-0.3, 0.3)) * floor.room_size_m,
                )
                position = (center[0] + jitter[0], center[1] + jitter[1])
                network.add_client(client_id, position=position)
                for ap_index, ap_id in enumerate(network.ap_ids):
                    loss = floor.path_loss_db(
                        ap_positions[ap_index], position, model
                    )
                    budget = LinkBudget(
                        tx_power_dbm=config.max_tx_power_dbm,
                        path_loss_db=loss,
                        noise_figure_db=config.noise_figure_db,
                    )
                    if budget.snr20_db >= -8.0:
                        network.set_link_snr(ap_id, client_id, budget.snr20_db)

    # AP-AP carrier sense through the same wall model.
    conflicts = []
    for i, ap_a in enumerate(network.ap_ids):
        for j in range(i + 1, len(network.ap_ids)):
            ap_b = network.ap_ids[j]
            loss = floor.path_loss_db(ap_positions[i], ap_positions[j], model)
            if config.max_tx_power_dbm - loss >= -82.0:
                conflicts.append((ap_a, ap_b))
    network.set_explicit_conflicts(conflicts)
    return client_order


def office_floor(
    rooms_x: int = 4,
    rooms_y: int = 3,
    clients_per_room: int = 1,
    n_aps: int = 3,
    seed: int = 0,
    plan: FloorPlan = FloorPlan(),
) -> Scenario:
    """An office floor: APs in corridor positions, clients per room.

    Wall losses naturally create the quality mix ACORN cares about —
    clients rooms away end up in the poor regime where bonding hurts.
    """
    if clients_per_room < 0:
        raise ConfigurationError("clients_per_room must be non-negative")
    if n_aps < 1:
        raise ConfigurationError("need at least one AP")
    rng = make_rng(seed)
    floor = FloorPlan(rooms_x, rooms_y, plan.room_size_m, plan.wall_loss_db)
    model = PathLossModel(exponent=2.8)  # indoor LOS-ish before walls
    config = SimulationConfig(seed=seed, path_loss=model)
    network = Network(config)
    client_order = populate_office_floor(
        network, rng, floor, model, n_aps, clients_per_room
    )

    return _finish(
        Scenario(
            name=f"office_{rooms_x}x{rooms_y}_{seed}",
            network=network,
            plan=ChannelPlan(),
            client_order=client_order,
            description=(
                f"{rooms_x}x{rooms_y} rooms, {clients_per_room}/room, "
                f"{n_aps} corridor APs, {plan.wall_loss_db:.0f} dB walls"
            ),
        ),
        lambda: office_floor(
            rooms_x, rooms_y, clients_per_room, n_aps, seed, plan
        ),
    )


register_scenario("office", office_floor)
