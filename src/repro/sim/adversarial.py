"""The adversarial scenario library: hard cases with embedded checks.

Nine scenarios built with :mod:`repro.sim.builder`, each engineered to
sit in a regime where allocation policies diverge and each carrying at
least one invariant check (:mod:`repro.sim.checks`) that executes inside
``repro sweep`` workers and ``repro timeline`` replays:

* **Hidden-terminal structures** — chains, stars, and odd rings whose
  conflict graphs contain open triples: APs mutually invisible to
  carrier sense that still collide at a middle cell.
* **Worst-case interference graphs** — cliques and scarce channel
  plans near the O(1/(Δ+1)) approximation bound (paper Sec 4).
* **Spatial stress** — atrium hotspots, a single-hotspot flash crowd,
  a vehicular drive-by (mobility snapshot), and a shadowed dense
  campus, in the spirit of the high-density deployments of
  Barrachina-Muñoz et al.
* **Legacy coexistence** — 802.11a-grade 2 dB links sharing cells with
  excellent 802.11n links (paper Sec 6.4), where a greedy 40 MHz
  choice collapses the cell.

Everything here registers into ``SCENARIOS`` at import time (the
chains are value-idempotent, so re-imports are no-ops) and sweeps like
any hand-written scenario: ``repro sweep --scenario atrium ...``.
"""

from __future__ import annotations

from .builder import scenario
from .checks import (
    all_clients_admissible,
    channels_scarce,
    has_hidden_terminals,
    min_fairness,
    min_interference_degree,
    min_snr_spread,
    min_total_mbps,
)
from .mobility import LinearWalk

__all__ = ["ADVERSARIAL_SCENARIOS"]

# A linear chain of six cells: every interior AP sits between two
# neighbours that cannot hear each other — maximal hidden-terminal
# exposure per edge — and only two basic channels serve a Δ=2 graph.
HIDDEN_CHAIN = (
    scenario("hidden_chain")
    .describe("6-AP chain, 2 channels: hidden terminals at every hop")
    .ap("AP1").ap("AP2").ap("AP3").ap("AP4").ap("AP5").ap("AP6")
    .client("c0").link("AP1", "c0", 25.0)
    .client("c1").link("AP2", "c1", 8.0)
    .client("c2").link("AP3", "c2", 25.0)
    .client("c3").link("AP4", "c3", 4.0)
    .client("c4").link("AP5", "c4", 25.0)
    .client("c5").link("AP6", "c5", 14.0)
    .conflicts(
        ("AP1", "AP2"), ("AP2", "AP3"), ("AP3", "AP4"),
        ("AP4", "AP5"), ("AP5", "AP6"),
    )
    .channels(2)
    .check(has_hidden_terminals())
    .check(min_interference_degree(2))
    .check(channels_scarce())
    .register()
)

# A 3x3 atrium grid spaced so only near neighbours carrier-sense each
# other (60 m spacing vs the ~88 m hearing radius of the default
# model): the conflict graph is a king-graph fragment full of open
# triples, and three client hotspots load it unevenly.
ATRIUM = (
    scenario("atrium")
    .describe("3x3 atrium grid with 3 client hotspots")
    .grid_aps(3, 3, spacing_m=60.0)
    .clients(18, clusters=3, spread_m=10.0)
    .check(has_hidden_terminals())
    .check(all_clients_admissible())
    .check(min_fairness(0.2))
    .register()
)

# Every client in one spot: a flash crowd at the corner of a 2x2
# deployment. The nearest AP saturates while the rest idle — total
# throughput must still clear a floor and nobody may be stranded.
FLASH_CROWD = (
    scenario("flash_crowd")
    .describe("2x2 grid, 20 clients in a single hotspot")
    .grid_aps(2, 2, spacing_m=40.0)
    .clients(20, clusters=1, spread_m=5.0)
    .check(all_clients_admissible())
    .check(min_total_mbps(1.0))
    .register()
)

# A vehicle passing three roadside APs: twelve snapshot positions of
# one drive-by (adamiaonr/wifi-vehicles idea). Link quality swings
# from excellent (abeam an AP) to marginal (between/far), and the two
# outer APs are hidden from each other behind the middle one.
DRIVE_BY = (
    scenario("drive_by")
    .describe("vehicular drive-by past 3 roadside APs")
    .ap("AP1", position=(40.0, 30.0))
    .ap("AP2", position=(120.0, 30.0))
    .ap("AP3", position=(200.0, 30.0))
    .mobility(LinearWalk(start_m=0.0, end_m=240.0, duration_s=24.0), 12)
    .check(has_hidden_terminals())
    .check(min_snr_spread(15.0))
    .register()
)

# Sec 6.4 coexistence: every cell serves one excellent 802.11n client
# next to one legacy-802.11a-grade client (~2 dB), under a mutual
# triangle with a scarce plan — greedy bonding collapses these cells.
LEGACY_COEX = (
    scenario("legacy_coex")
    .describe("802.11a-grade clients sharing cells with 802.11n ones")
    .ap("AP1").ap("AP2").ap("AP3")
    .client("n1").link("AP1", "n1", 30.0)
    .client("a1").link("AP1", "a1", 2.0)
    .client("n2").link("AP2", "n2", 29.0)
    .client("a2").link("AP2", "a2", 2.5)
    .client("n3").link("AP3", "n3", 31.0)
    .client("a3").link("AP3", "a3", 1.5)
    .conflicts(("AP1", "AP2"), ("AP1", "AP3"), ("AP2", "AP3"))
    .channels(2)
    .check(min_snr_spread(20.0))
    .check(min_interference_degree(2))
    .check(channels_scarce())
    .register()
)

# K5: the densest 5-AP graph, with four basic channels — inside the
# O(1/(Δ+1)) worst-case regime where some cell must share no matter
# what the allocator does.
WORST_CASE_CLIQUE = (
    scenario("worst_case_clique")
    .describe("5-AP clique, 4 channels: the O(1/(Δ+1)) regime")
    .ap("AP1").ap("AP2").ap("AP3").ap("AP4").ap("AP5")
    .client("c0").link("AP1", "c0", 26.0)
    .client("c1").link("AP2", "c1", 20.0)
    .client("c2").link("AP3", "c2", 14.0)
    .client("c3").link("AP4", "c3", 8.0)
    .client("c4").link("AP5", "c4", 4.0)
    .conflicts(
        ("AP1", "AP2"), ("AP1", "AP3"), ("AP1", "AP4"), ("AP1", "AP5"),
        ("AP2", "AP3"), ("AP2", "AP4"), ("AP2", "AP5"),
        ("AP3", "AP4"), ("AP3", "AP5"), ("AP4", "AP5"),
    )
    .channels(4)
    .check(min_interference_degree(4))
    .check(channels_scarce())
    .register()
)

# A star: six leaves all contend with one hub but never with each
# other — every leaf pair is hidden behind the hub, and the hub's
# Δ=6 neighbourhood dwarfs the 2-channel plan.
INTERFERENCE_STAR = (
    scenario("interference_star")
    .describe("hub + 6 leaves: every leaf pair hidden behind the hub")
    .ap("HUB")
    .ap("L1").ap("L2").ap("L3").ap("L4").ap("L5").ap("L6")
    .client("h0").link("HUB", "h0", 25.0)
    .client("c1").link("L1", "c1", 20.0)
    .client("c2").link("L2", "c2", 20.0)
    .client("c3").link("L3", "c3", 8.0)
    .client("c4").link("L4", "c4", 8.0)
    .client("c5").link("L5", "c5", 2.0)
    .client("c6").link("L6", "c6", 2.0)
    .conflicts(
        ("HUB", "L1"), ("HUB", "L2"), ("HUB", "L3"),
        ("HUB", "L4"), ("HUB", "L5"), ("HUB", "L6"),
    )
    .channels(2)
    .check(has_hidden_terminals())
    .check(min_interference_degree(6))
    .check(channels_scarce())
    .register()
)

# C5: the smallest odd cycle. Two channels 2-colour every even cycle
# but never an odd one, so some edge must share a channel; every
# vertex also has two mutually hidden neighbours.
ODD_RING = (
    scenario("odd_ring")
    .describe("5-AP odd cycle, 2 channels: not 2-colourable")
    .ap("AP1").ap("AP2").ap("AP3").ap("AP4").ap("AP5")
    .client("c0").link("AP1", "c0", 25.0)
    .client("c1").link("AP2", "c1", 20.0)
    .client("c2").link("AP3", "c2", 14.0)
    .client("c3").link("AP4", "c3", 8.0)
    .client("c4").link("AP5", "c4", 25.0)
    .conflicts(
        ("AP1", "AP2"), ("AP2", "AP3"), ("AP3", "AP4"),
        ("AP4", "AP5"), ("AP5", "AP1"),
    )
    .channels(2)
    .check(has_hidden_terminals())
    .check(min_interference_degree(2))
    .check(channels_scarce())
    .register()
)

# A shadowed dense campus: jittered AP grid, heavy path loss, 4 dB
# per-link shadowing — the high-density spatially-distributed regime.
# Seed-dependent by design; the checks assert the structure that must
# survive any seed.
DENSE_CAMPUS = (
    scenario("dense_campus")
    .describe("8 shadowed campus APs, 20 uniform clients")
    .path_loss(exponent=3.5)
    .enterprise_aps(8, area_m=(120.0, 90.0))
    .uniform_clients(20)
    .carrier_sense_conflicts()
    .channels(6)
    .check(min_interference_degree(1))
    .check(min_snr_spread(10.0))
    .check(min_total_mbps(1.0))
    .register()
)

# Name → compiled chain, in definition order (the CI smoke job and the
# EXPERIMENTS.md table iterate this).
ADVERSARIAL_SCENARIOS = {
    chain.name: chain
    for chain in (
        HIDDEN_CHAIN,
        ATRIUM,
        FLASH_CROWD,
        DRIVE_BY,
        LEGACY_COEX,
        WORST_CASE_CLIQUE,
        INTERFERENCE_STAR,
        ODD_RING,
        DENSE_CAMPUS,
    )
}
