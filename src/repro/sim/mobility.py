"""The pedestrian-mobility experiment (Fig 12/13).

One AP serves two static, good-quality clients plus a laptop walking
either away from or toward the AP. ACORN's opportunistic width mode
re-evaluates the 20-vs-40 MHz choice every step from the measured link
qualities; the fixed-width references hold their channel regardless.
The paper's result: walking away, ACORN drops to 20 MHz when the mobile
link degrades and sustains ~10x the throughput of a stubborn 40 MHz
cell (the poor mobile client otherwise drags everyone down via the
performance anomaly); walking toward, ACORN upgrades to 40 MHz and
collects the bonding gain a fixed 20 MHz cell forgoes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

import numpy as np

from ..config import PathLossModel, SimulationConfig
from ..core.controller import Acorn
from ..errors import ConfigurationError
from ..net.channels import Channel, ChannelPlan
from ..net.throughput import ThroughputModel
from ..net.topology import Network

__all__ = ["LinearWalk", "MobilityTrace", "run_mobility_experiment"]


@dataclass(frozen=True)
class LinearWalk:
    """Constant-speed straight-line pedestrian movement."""

    start_m: float
    end_m: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration_s}"
            )
        if self.start_m < 0 or self.end_m < 0:
            raise ConfigurationError("distances must be non-negative")

    def distance_at(self, time_s: float) -> float:
        """Distance from the AP at ``time_s`` (clamped to the walk)."""
        progress = min(max(time_s / self.duration_s, 0.0), 1.0)
        return self.start_m + (self.end_m - self.start_m) * progress


@dataclass
class MobilityTrace:
    """Time series produced by the mobility experiment."""

    times_s: List[float] = field(default_factory=list)
    mobile_snr20_db: List[float] = field(default_factory=list)
    acorn_width_mhz: List[int] = field(default_factory=list)
    acorn_mbps: List[float] = field(default_factory=list)
    fixed_mbps: List[float] = field(default_factory=list)
    fixed_width_mhz: int = 40

    @property
    def switch_time_s(self) -> Optional[float]:
        """First time ACORN's width differs from its initial width."""
        if not self.acorn_width_mhz:
            return None
        first = self.acorn_width_mhz[0]
        for time_s, width in zip(self.times_s, self.acorn_width_mhz):
            if width != first:
                return time_s
        return None

    def tail_gain(self, tail_fraction: float = 0.25) -> float:
        """ACORN-to-fixed throughput ratio over the trace's final stretch."""
        if not self.times_s:
            raise ConfigurationError("empty trace")
        n_tail = max(1, int(len(self.times_s) * tail_fraction))
        acorn_tail = float(np.mean(self.acorn_mbps[-n_tail:]))
        fixed_tail = float(np.mean(self.fixed_mbps[-n_tail:]))
        if fixed_tail <= 0:
            return float("inf") if acorn_tail > 0 else 1.0
        return acorn_tail / fixed_tail

    def post_switch_gain(self) -> float:
        """Mean ACORN-to-fixed ratio from the width switch to the end.

        The paper's Fig 13a headline ("almost ten times that of a fixed
        40 MHz channel") is measured over exactly this window. Returns
        1.0 when no switch occurred.
        """
        switch = self.switch_time_s
        if switch is None:
            return 1.0
        acorn_tail = [
            value
            for time_s, value in zip(self.times_s, self.acorn_mbps)
            if time_s >= switch
        ]
        fixed_tail = [
            value
            for time_s, value in zip(self.times_s, self.fixed_mbps)
            if time_s >= switch
        ]
        acorn_mean = float(np.mean(acorn_tail))
        fixed_mean = float(np.mean(fixed_tail))
        if fixed_mean <= 0:
            return float("inf") if acorn_mean > 0 else 1.0
        return acorn_mean / fixed_mean


def _build_cell(
    static_distance_m: Tuple[float, float] = (8.0, 10.0),
) -> Tuple[Network, PathLossModel]:
    """One AP at the origin with two static good clients.

    The indoor exponent of 4 (office walls) puts the far end of the
    default walk right in the regime where a 20 MHz channel still
    decodes but a bonded one does not — the Fig 13 crossover.
    """
    model = PathLossModel(exponent=4.0)
    config = SimulationConfig(path_loss=model)
    network = Network(config)
    network.add_ap("AP", position=(0.0, 0.0))
    for index, distance in enumerate(static_distance_m):
        client_id = f"static{index + 1}"
        network.add_client(client_id, position=(distance, 0.0))
        network.associate(client_id, "AP")
    network.add_client("mobile", position=(1.0, 0.0))
    network.associate("mobile", "AP")
    network.set_explicit_conflicts([])
    return network, model


def run_mobility_experiment(
    direction: Literal["away", "toward"] = "away",
    duration_s: float = 50.0,
    step_s: float = 1.0,
    near_m: float = 5.0,
    far_m: float = 58.0,
    hysteresis: float = 0.0,
) -> MobilityTrace:
    """Reproduce the Fig 13 time traces.

    ``direction="away"`` compares ACORN against a fixed 40 MHz channel
    (Fig 13a); ``"toward"`` against fixed 20 MHz (Fig 13b).
    ``hysteresis`` (relative margin) damps width flapping near the
    crossover; 0 reproduces the paper's always-switch behaviour.
    """
    if direction not in ("away", "toward"):
        raise ConfigurationError(f"unknown direction {direction!r}")
    if step_s <= 0 or duration_s <= 0:
        raise ConfigurationError("duration and step must be positive")
    walk = (
        LinearWalk(near_m, far_m, duration_s)
        if direction == "away"
        else LinearWalk(far_m, near_m, duration_s)
    )
    network, model = _build_cell()
    plan = ChannelPlan()
    throughput = ThroughputModel()
    acorn = Acorn(network, plan, throughput)
    bonded = Channel(36, 40)
    network.set_channel("AP", bonded)
    fixed_width = 40 if direction == "away" else 20
    fixed_channel = bonded if fixed_width == 40 else Channel(36)

    trace = MobilityTrace(fixed_width_mhz=fixed_width)
    steps = int(round(duration_s / step_s)) + 1
    current: "Channel | None" = None
    for step in range(steps):
        time_s = step * step_s
        distance = walk.distance_at(time_s)
        loss = model.loss_db(distance)
        snr = _snr20(network, loss)
        network.set_link_snr("AP", "mobile", snr)

        decided = acorn.opportunistic_width(
            "AP", current=current, hysteresis=hysteresis
        )
        current = decided
        acorn_mbps = throughput.isolated_ap_throughput_mbps(network, "AP", decided)
        fixed_mbps = throughput.isolated_ap_throughput_mbps(
            network, "AP", fixed_channel
        )
        trace.times_s.append(time_s)
        trace.mobile_snr20_db.append(snr)
        trace.acorn_width_mhz.append(decided.width_mhz)
        trace.acorn_mbps.append(acorn_mbps)
        trace.fixed_mbps.append(fixed_mbps)
    return trace


def _snr20(network: Network, path_loss_db: float) -> float:
    from ..link.budget import snr20_from_path_loss

    return snr20_from_path_loss(
        path_loss_db,
        tx_power_dbm=network.ap("AP").tx_power_dbm,
        noise_figure_db=network.config.noise_figure_db,
    )
