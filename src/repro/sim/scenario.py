"""Builders for the paper's evaluation scenarios.

Each builder returns a :class:`Scenario` — a network, the channel plan
it plays on, and a canonical client arrival order — matching the
deployments of Section 5: the Fig 10 topologies, the Fig 11 dense
triangle, the Fig 14 AP triples, and randomly drawn enterprise WLANs
for the Table 3 comparison.

The paper specifies these topologies by *link quality*, not floor
coordinates, so the builders pin SNRs directly (a "poor client" is a
~1 dB link, a "good client" ~25 dB) and declare interference edges
explicitly. :func:`random_enterprise` is fully geometric instead.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import PathLossModel, SimulationConfig, make_rng
from ..errors import ConfigurationError
from ..net.channels import ChannelPlan
from ..net.topology import Network

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from .checks import InvariantCheck

__all__ = [
    "Scenario",
    "topology1",
    "topology2",
    "dense_triangle",
    "random_enterprise",
    "ap_triple",
    "SCENARIOS",
    "register_scenario",
    "make_scenario",
    "scenario_names",
    "scenario_accepts",
    "carrier_sense_conflict_pairs",
    "populate_enterprise_aps",
    "populate_quality_choice_clients",
    "populate_uniform_clients",
]

# Representative link qualities (20 MHz per-subcarrier SNR, dB).
POOR_SNR_DB = 1.0
MARGINAL_SNR_DB = 5.0
GOOD_SNR_DB = 25.0
EXCELLENT_SNR_DB = 30.0


@dataclass
class Scenario:
    """A ready-to-configure experiment setup.

    ``checks`` carries the scenario's invariant checks (see
    :mod:`repro.sim.checks`): picklable predicates the fleet executor
    evaluates inside each worker and ``repro timeline`` evaluates per
    replay. Hand-written factories leave it empty; builder chains
    attach whatever ``.check(...)`` declared.
    """

    name: str
    network: Network
    plan: ChannelPlan
    client_order: List[str] = field(default_factory=list)
    description: str = ""
    checks: "Tuple[InvariantCheck, ...]" = ()

    def fresh_network(self) -> Network:
        """A pristine copy of the network (no associations/channels).

        Builders are deterministic, so re-running the builder is the
        canonical way to compare controllers on identical topologies;
        this helper re-invokes the stored factory.
        """
        if self._factory is None:
            raise ConfigurationError(
                f"scenario {self.name!r} was not built by a registered factory"
            )
        return self._factory().network

    _factory: "Optional[callable]" = None


def _finish(scenario: Scenario, factory) -> Scenario:
    scenario._factory = factory
    return scenario


def topology1() -> Scenario:
    """Fig 10 Topology 1: a sparse 2-AP WLAN.

    AP1 serves two poor clients; AP2 serves two good clients. No
    interference (plenty of channels, APs far apart). ACORN should give
    AP1 a 20 MHz channel (large gain) and AP2 a bonded one.
    """
    network = Network()
    network.add_ap("AP1")
    network.add_ap("AP2")
    links = {
        ("AP1", "u1"): POOR_SNR_DB,
        ("AP1", "u2"): POOR_SNR_DB + 1.0,
        ("AP2", "u3"): GOOD_SNR_DB,
        ("AP2", "u4"): GOOD_SNR_DB + 2.0,
    }
    for (ap_id, client_id), snr in links.items():
        if client_id not in network.client_ids:
            network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
    network.set_explicit_conflicts([])
    return _finish(
        Scenario(
            name="topology1",
            network=network,
            plan=ChannelPlan(),
            client_order=["u1", "u2", "u3", "u4"],
            description="2 APs, interference-free; poor cell vs good cell",
        ),
        topology1,
    )


def topology2() -> Scenario:
    """Fig 10 Topology 2: 5 APs, mixed client qualities.

    * AP1 and AP3 are near each other; five good-quality clients hear
      both (ACORN groups them by quality, [17] splits them evenly).
    * AP2 serves two good clients of its own.
    * AP4 has two poor clients, AP5 one poor and one marginal client —
      the cells where greedy 40 MHz use collapses.
    Interference-free: twelve channels cover five APs.
    """
    network = Network()
    for index in range(1, 6):
        network.add_ap(f"AP{index}")
    # Shared region between AP1 and AP3: clients hear both.
    shared = {
        "s1": (GOOD_SNR_DB, GOOD_SNR_DB - 6.0),
        "s2": (GOOD_SNR_DB + 1.0, GOOD_SNR_DB - 7.0),
        "s3": (GOOD_SNR_DB - 1.0, GOOD_SNR_DB - 5.0),
        "s4": (GOOD_SNR_DB - 8.0, GOOD_SNR_DB + 3.0),
        "s5": (GOOD_SNR_DB - 9.0, GOOD_SNR_DB + 2.0),
    }
    for client_id, (snr_ap1, snr_ap3) in shared.items():
        network.add_client(client_id)
        network.set_link_snr("AP1", client_id, snr_ap1)
        network.set_link_snr("AP3", client_id, snr_ap3)
    # AP2's private good clients.
    for client_id, snr in (("g1", GOOD_SNR_DB), ("g2", GOOD_SNR_DB + 3.0)):
        network.add_client(client_id)
        network.set_link_snr("AP2", client_id, snr)
    # AP4's poor clients.
    for client_id, snr in (("p1", POOR_SNR_DB), ("p2", POOR_SNR_DB + 0.5)):
        network.add_client(client_id)
        network.set_link_snr("AP4", client_id, snr)
    # AP5: one poor, one marginal.
    for client_id, snr in (("q1", POOR_SNR_DB + 2.0), ("q2", MARGINAL_SNR_DB)):
        network.add_client(client_id)
        network.set_link_snr("AP5", client_id, snr)
    network.set_explicit_conflicts([])
    return _finish(
        Scenario(
            name="topology2",
            network=network,
            plan=ChannelPlan(),
            client_order=[
                "s1", "g1", "p1", "s2", "q1", "s3", "g2", "p2", "s4", "q2", "s5",
            ],
            description="5 APs; quality grouping and per-cell width choices",
        ),
        topology2,
    )


def dense_triangle() -> Scenario:
    """Fig 11: 3 mutually contending APs, only four 20 MHz channels.

    AP1 serves a good client; AP2 and AP3 serve poor clients. Only one
    AP can hold a bonded channel and stay isolated — the allocator must
    identify that it should be AP1.
    """
    network = Network()
    for index in range(1, 4):
        network.add_ap(f"AP{index}")
    links = {
        ("AP1", "good"): GOOD_SNR_DB,
        ("AP2", "poorA"): POOR_SNR_DB + 1.0,
        ("AP3", "poorB"): POOR_SNR_DB,
    }
    for (ap_id, client_id), snr in links.items():
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
    network.set_explicit_conflicts(
        [("AP1", "AP2"), ("AP1", "AP3"), ("AP2", "AP3")]
    )
    return _finish(
        Scenario(
            name="dense_triangle",
            network=network,
            plan=ChannelPlan().subset(4),
            client_order=["good", "poorA", "poorB"],
            description="3 contending APs, 4 channels: who gets to bond?",
        ),
        dense_triangle,
    )


def populate_quality_choice_clients(
    network: Network,
    rng: np.random.Generator,
    per_ap: int = 2,
    choices: Tuple[float, ...] = (1.0, 4.0, 8.0, 14.0, 20.0, 26.0),
    sigma_db: float = 1.0,
    prefix: str = "c",
    start: int = 0,
) -> List[str]:
    """Attach ``per_ap`` palette-quality clients to every AP.

    For each AP (insertion order) and each of its clients, one SNR is
    drawn from the discrete ``choices`` palette plus ``sigma_db`` of
    Gaussian jitter and pinned on that AP's link only — the Fig 14
    construction. Returns the created client ids in insertion order.
    Shared by :func:`ap_triple` and the builder's
    ``quality_choice_clients`` step, so both consume the RNG stream
    identically (bit-identical fingerprints).
    """
    snr_choices = np.asarray(choices, dtype=float)
    counter = start
    order: List[str] = []
    for ap_id in network.ap_ids:
        for _ in range(per_ap):
            client_id = f"{prefix}{counter}"
            counter += 1
            network.add_client(client_id)
            snr = float(rng.choice(snr_choices)) + float(
                rng.normal(0.0, sigma_db)
            )
            network.set_link_snr(ap_id, client_id, snr)
            order.append(client_id)
    return order


def populate_enterprise_aps(
    network: Network,
    rng: np.random.Generator,
    n_aps: int,
    area_m: Tuple[float, float],
    jitter_sigma_m: float = 3.0,
    prefix: str = "AP",
) -> List[Tuple[float, float]]:
    """Place ``n_aps`` APs on a jittered grid over ``area_m``.

    The grid is ``ceil(sqrt(n))`` columns wide; every AP draws two
    Gaussian jitters (x then y). Returns the positions in insertion
    order. Shared by :func:`random_enterprise` and the builder's
    ``enterprise_aps`` step.
    """
    width, height = area_m
    columns = max(1, int(math.ceil(math.sqrt(n_aps))))
    rows = int(math.ceil(n_aps / columns))
    positions: List[Tuple[float, float]] = []
    for index in range(n_aps):
        column = index % columns
        row = index // columns
        x = (column + 0.5) / columns * width + float(
            rng.normal(0.0, jitter_sigma_m)
        )
        y = (row + 0.5) / rows * height + float(
            rng.normal(0.0, jitter_sigma_m)
        )
        positions.append((x, y))
        network.add_ap(f"{prefix}{index + 1}", position=(x, y))
    return positions


def populate_uniform_clients(
    network: Network,
    rng: np.random.Generator,
    n_clients: int,
    area_m: Tuple[float, float],
    shadowing_sigma_db: float = 4.0,
    min_snr20_db: float = -8.0,
    prefix: str = "c",
    start: int = 1,
) -> List[str]:
    """Drop clients uniformly over ``area_m`` and pin shadowed links.

    Each client draws its position (x then y), then one shadowing
    sample per AP in insertion order; links whose budget SNR clears
    ``min_snr20_db`` are pinned, the rest are dropped. Returns the
    client ids in insertion order. Shared by :func:`random_enterprise`
    and the builder's ``uniform_clients`` step.
    """
    model = network.config.path_loss
    width, height = area_m
    client_order: List[str] = []
    for index in range(n_clients):
        client_id = f"{prefix}{index + start}"
        client_order.append(client_id)
        position = (
            float(rng.uniform(0.0, width)),
            float(rng.uniform(0.0, height)),
        )
        network.add_client(client_id, position=position)
        # Pin link SNRs with one-time shadowing for determinism.
        for ap_id in network.ap_ids:
            distance = network.distance(
                network.ap(ap_id).position, position
            )
            loss = model.loss_db(distance) + float(
                rng.normal(0.0, shadowing_sigma_db)
            )
            budget_snr = _snr20_from_loss(loss, network.config)
            if budget_snr >= min_snr20_db:
                network.set_link_snr(ap_id, client_id, budget_snr)
    return client_order


def carrier_sense_conflict_pairs(
    network: Network, threshold_dbm: float = -82.0
) -> List[Tuple[str, str]]:
    """AP pairs that hear each other above the carrier-sense threshold.

    Deterministic (no shadowing): loss follows the configured path-loss
    model over AP-AP distance. Shared by :func:`random_enterprise` and
    the builder's ``carrier_sense_conflicts`` step.
    """
    model = network.config.path_loss
    conflicts: List[Tuple[str, str]] = []
    ap_ids = network.ap_ids
    for i, ap_a in enumerate(ap_ids):
        for ap_b in ap_ids[i + 1 :]:
            loss = model.loss_db(network.ap_distance_m(ap_a, ap_b))
            if network.ap(ap_a).tx_power_dbm - loss >= threshold_dbm:
                conflicts.append((ap_a, ap_b))
    return conflicts


def ap_triple(seed: int = 0) -> Scenario:
    """One Fig 14 instance: 3 mutually contending APs (Δ = 2).

    Each AP serves two clients whose qualities are drawn from a wide
    range, so across seeds some APs prefer 20 MHz in isolation — the
    cases where ACORN reaches the 6-channel optimum with only 4.
    """
    rng = make_rng(seed)
    network = Network()
    for index in range(1, 4):
        network.add_ap(f"AP{index}")
    order = populate_quality_choice_clients(network, rng)
    network.set_explicit_conflicts(
        [("AP1", "AP2"), ("AP1", "AP3"), ("AP2", "AP3")]
    )
    return _finish(
        Scenario(
            name=f"ap_triple_{seed}",
            network=network,
            plan=ChannelPlan().subset(6),
            client_order=order,
            description="3 contending APs for the approximation-ratio study",
        ),
        lambda: ap_triple(seed),
    )


def random_enterprise(
    n_aps: int = 5,
    n_clients: int = 12,
    area_m: Tuple[float, float] = (80.0, 60.0),
    seed: int = 42,
    shadowing_sigma_db: float = 4.0,
) -> Scenario:
    """A geometric enterprise deployment (used for Table 3).

    APs sit on a jittered grid, clients drop uniformly. Link SNRs come
    from a log-distance model (exponent 4: dense office walls) plus
    per-link shadowing drawn once at build time so the scenario is
    deterministic. AP-AP interference follows carrier sense through the
    same model via explicit conflict edges.
    """
    if n_aps < 1 or n_clients < 1:
        raise ConfigurationError("need at least one AP and one client")
    rng = make_rng(seed)
    model = PathLossModel(exponent=4.0)
    config = SimulationConfig(seed=seed, path_loss=model)
    network = Network(config)
    width, height = area_m

    populate_enterprise_aps(network, rng, n_aps, area_m)
    client_order = populate_uniform_clients(
        network,
        rng,
        n_clients,
        area_m,
        shadowing_sigma_db=shadowing_sigma_db,
    )
    # Carrier-sense edges between APs (deterministic, no shadowing).
    network.set_explicit_conflicts(carrier_sense_conflict_pairs(network))

    return _finish(
        Scenario(
            name=f"random_enterprise_{seed}",
            network=network,
            plan=ChannelPlan(),
            client_order=client_order,
            description=f"{n_aps} APs / {n_clients} clients in "
            f"{width:.0f}x{height:.0f} m",
        ),
        lambda: random_enterprise(
            n_aps, n_clients, area_m, seed, shadowing_sigma_db
        ),
    )


# ----------------------------------------------------------------------
# Scenario registry: name → factory, so callers (the CLI `scenario`
# subcommand, `repro.fleet` sweep jobs, serialized experiment specs) can
# reference deployments by string instead of importing builders.

SCENARIOS: Dict[str, Callable[..., Scenario]] = {}


def register_scenario(name: str, factory: Callable[..., Scenario]) -> None:
    """Register a scenario ``factory`` under ``name``.

    Re-registering the same factory is a no-op; binding an existing name
    to a *different* factory raises :class:`ConfigurationError` so sweep
    job ids stay unambiguous.
    """
    existing = SCENARIOS.get(name)
    if existing is not None and existing is not factory:
        raise ConfigurationError(
            f"scenario name {name!r} is already registered to "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    SCENARIOS[name] = factory


def _ensure_registry() -> None:
    """Pull in modules that register scenarios at import time."""
    from . import adversarial  # noqa: F401 — the adversarial library
    from . import buildings  # noqa: F401 — registers "office"


def scenario_names() -> List[str]:
    """The registered scenario names, sorted."""
    _ensure_registry()
    return sorted(SCENARIOS)


def _factory_for(name: str) -> Callable[..., Scenario]:
    _ensure_registry()
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None


def make_scenario(name: str, **kwargs) -> Scenario:
    """Build the scenario registered under ``name``.

    ``kwargs`` are passed to the factory after validation against its
    signature, so a typo (or a seed passed to a deterministic topology)
    fails with a :class:`ConfigurationError` instead of a ``TypeError``
    deep inside a worker process.
    """
    factory = _factory_for(name)
    parameters = inspect.signature(factory).parameters
    unknown = sorted(key for key in kwargs if key not in parameters)
    if unknown:
        raise ConfigurationError(
            f"scenario {name!r} does not accept {unknown}; "
            f"its parameters are {sorted(parameters)}"
        )
    return factory(**kwargs)


def scenario_accepts(name: str, parameter: str) -> bool:
    """Whether the factory registered under ``name`` takes ``parameter``."""
    return parameter in inspect.signature(_factory_for(name)).parameters


register_scenario("topology1", topology1)
register_scenario("topology2", topology2)
register_scenario("dense", dense_triangle)
register_scenario("triple", ap_triple)
register_scenario("random", random_enterprise)


def _snr20_from_loss(path_loss_db: float, config: SimulationConfig) -> float:
    """20 MHz per-subcarrier SNR for a link with the given total loss."""
    from ..link.budget import snr20_from_path_loss

    return snr20_from_path_loss(
        path_loss_db,
        tx_power_dbm=config.max_tx_power_dbm,
        noise_figure_db=config.noise_figure_db,
    )
