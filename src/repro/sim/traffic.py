"""Traffic models: saturated UDP and loss-sensitive TCP.

The network evaluator multiplies each client's delivered throughput by
``goodput_factor(per)``. UDP counts every delivered packet. TCP "is more
sensitive to packet losses and as a result even small PER increments can
significantly degrade performance" (Section 3.2) — congestion control
backs off on residual loss and the reverse ACK stream costs airtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..net.throughput import UdpTraffic

__all__ = ["UdpTraffic", "TcpTraffic"]


@dataclass(frozen=True)
class TcpTraffic:
    """Loss-amplified goodput model for long-lived TCP downloads.

    ``factor = ack_efficiency * (1 - per)**loss_exponent``

    * ``ack_efficiency`` — share of airtime left for data once the
      reverse ACK stream is accounted for (~0.85 for delayed ACKs).
    * ``loss_exponent`` — amplification of loss sensitivity relative to
      UDP. The MAC already retransmits (factor (1-per) inside the
      delay); TCP additionally shrinks its window on residual losses
      and timeouts, modelled as two further (1-per) factors.

    The exact exponent only scales how much worse TCP fares on lossy
    links; any value > 0 reproduces the paper's qualitative finding that
    more TCP links than UDP links prefer 20 MHz.
    """

    ack_efficiency: float = 0.85
    loss_exponent: float = 2.0

    name = "tcp"

    def __post_init__(self) -> None:
        if not 0 < self.ack_efficiency <= 1:
            raise ConfigurationError(
                f"ack_efficiency must be in (0, 1], got {self.ack_efficiency}"
            )
        if self.loss_exponent < 0:
            raise ConfigurationError(
                f"loss_exponent must be non-negative, got {self.loss_exponent}"
            )

    def goodput_factor(self, per: float) -> float:
        """Fraction of the UDP goodput a TCP flow retains at this PER."""
        if not 0.0 <= per <= 1.0:
            raise ConfigurationError(f"per must be in [0, 1], got {per}")
        return self.ack_efficiency * (1.0 - per) ** self.loss_exponent
