"""Experiment substrate: traffic models, paper scenarios, mobility."""

from .traffic import TcpTraffic, UdpTraffic
from .scenario import (
    Scenario,
    topology1,
    topology2,
    dense_triangle,
    random_enterprise,
    ap_triple,
)
from .mobility import LinearWalk, MobilityTrace, run_mobility_experiment
from .longrun import ChurnConfig, LongRunResult, run_long_run
from .buildings import FloorPlan, office_floor

__all__ = [
    "UdpTraffic",
    "TcpTraffic",
    "Scenario",
    "topology1",
    "topology2",
    "dense_triangle",
    "random_enterprise",
    "ap_triple",
    "LinearWalk",
    "MobilityTrace",
    "run_mobility_experiment",
    "ChurnConfig",
    "LongRunResult",
    "run_long_run",
    "FloorPlan",
    "office_floor",
]
