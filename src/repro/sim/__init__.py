"""Experiment substrate: traffic, scenarios, builder chains, mobility."""

from .traffic import TcpTraffic, UdpTraffic
from .scenario import (
    SCENARIOS,
    Scenario,
    ap_triple,
    dense_triangle,
    make_scenario,
    random_enterprise,
    register_scenario,
    scenario_accepts,
    scenario_names,
    topology1,
    topology2,
)
from .checks import (
    CHECKS,
    CheckResult,
    InvariantCheck,
    evaluate_network_checks,
    evaluate_result_checks,
    register_check,
)
from .builder import CompiledChain, ScenarioBuilder, scenario
from .mobility import LinearWalk, MobilityTrace, run_mobility_experiment
from .longrun import ChurnConfig, LongRunResult, run_long_run
from .timeline import (
    EpochRecord,
    TimelineConfig,
    TimelineResult,
    campus_network,
    place_client_random_links,
    place_client_uniform,
    run_timeline,
)
from .buildings import FloorPlan, office_floor
from .adversarial import ADVERSARIAL_SCENARIOS

__all__ = [
    "ADVERSARIAL_SCENARIOS",
    "CHECKS",
    "CheckResult",
    "CompiledChain",
    "InvariantCheck",
    "ScenarioBuilder",
    "evaluate_network_checks",
    "evaluate_result_checks",
    "register_check",
    "scenario",
    "UdpTraffic",
    "TcpTraffic",
    "Scenario",
    "topology1",
    "topology2",
    "dense_triangle",
    "random_enterprise",
    "ap_triple",
    "LinearWalk",
    "MobilityTrace",
    "run_mobility_experiment",
    "ChurnConfig",
    "LongRunResult",
    "run_long_run",
    "EpochRecord",
    "TimelineConfig",
    "TimelineResult",
    "campus_network",
    "place_client_random_links",
    "place_client_uniform",
    "run_timeline",
    "FloorPlan",
    "office_floor",
    "SCENARIOS",
    "register_scenario",
    "make_scenario",
    "scenario_names",
    "scenario_accepts",
]
