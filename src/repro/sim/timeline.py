"""Event-driven campus timeline: a day of association churn, replayed.

The paper picks T = 30 min from the CRAWDAD association durations
(Fig 9) but only evaluates static snapshots; this module replays the
session model over time. Clients arrive per a Poisson process and stay
for log-normal sessions (:func:`repro.traces.associations.
synthesize_association_events`), associate through Algorithm 1 on
arrival, and Algorithm 2 re-runs every ``period_s`` — plus optionally
every N admissions — with warm-started allocations.

What makes this affordable at campus scale (hundreds of APs, tens of
thousands of sessions) is incremental recompilation: every arrival and
departure patches the controller's compiled snapshot through
:meth:`~repro.net.state.CompiledNetwork.apply_churn` (bit-identical to a
fresh compile, near ``compiled_ms`` instead of ``compile_ms``) rather
than rebuilding it. Per-epoch throughput, fairness and reconfiguration
latency stream into :class:`repro.obs.TimeSeries` metrics when a tracer
is active; ``benchmarks/bench_timeline.py`` gates events/sec and the
recompile-vs-fresh speedup.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..analysis.fairness import jain_index
from ..config import ACORN_PERIOD_SECONDS, make_rng
from ..core.controller import Acorn
from ..errors import AssociationError, ConfigurationError
from ..net.channels import ChannelPlan
from ..net.throughput import ThroughputModel
from ..net.topology import Network
from ..obs.clock import monotonic_clock
from ..obs.tracer import active_tracer
from ..traces.associations import (
    PAPER_MEDIAN_S,
    PAPER_P90_S,
    synthesize_association_events,
)

__all__ = [
    "EpochRecord",
    "TimelineConfig",
    "TimelineResult",
    "campus_network",
    "place_client_random_links",
    "place_client_uniform",
    "run_timeline",
]

# Event ordering tags (heap ties broken by insertion sequence).
_ARRIVAL, _DEPARTURE, _EPOCH = 0, 1, 2

# client_factory contract: register ``client_id`` on the network (position
# and/or SNR overrides) so it can be admitted; see place_client_uniform.
ClientFactory = Callable[[Network, str, np.random.Generator], None]


@dataclass(frozen=True)
class TimelineConfig:
    """Workload and control knobs of the timeline simulation."""

    horizon_s: float = 4 * 3600.0
    arrival_rate_per_s: float = 1 / 120.0
    median_session_s: float = PAPER_MEDIAN_S
    p90_session_s: float = PAPER_P90_S
    period_s: float = ACORN_PERIOD_SECONDS
    # 0 disables event-triggered reconfiguration; N > 0 re-runs
    # Algorithm 2 after every N admitted arrivals, on top of the
    # periodic schedule.
    allocate_every_arrivals: int = 0
    # Channel switches cost real time (CSA quiet periods, client
    # re-association); same conservative figure as the long-run model.
    reallocation_downtime_s: float = 15.0
    measure_every_event: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.period_s <= 0:
            raise ConfigurationError("period must be positive")
        if self.allocate_every_arrivals < 0:
            raise ConfigurationError(
                "allocate_every_arrivals must be non-negative"
            )
        if self.reallocation_downtime_s < 0:
            raise ConfigurationError("downtime must be non-negative")


@dataclass(frozen=True)
class EpochRecord:
    """One reconfiguration epoch: when, why, and what it achieved."""

    t_s: float
    trigger: str  # "initial" | "periodic" | "event"
    total_mbps: float
    jain: float
    n_clients: int
    n_rounds: int
    # Wall-clock latency of the Algorithm 2 re-run (monotonic-clock
    # seam). Latency telemetry, not simulation state: nothing downstream
    # branches on it, so results stay deterministic.
    reconfig_wall_s: float


@dataclass
class TimelineResult:
    """Aggregated outcome of one timeline replay."""

    config: TimelineConfig
    mean_throughput_mbps: float
    n_arrivals: int
    n_departures: int
    n_rejected: int
    n_events: int
    peak_clients: int
    downtime_s: float
    epochs: List[EpochRecord] = field(default_factory=list)
    samples: List[Tuple[float, float]] = field(repr=False, default_factory=list)

    @property
    def n_epochs(self) -> int:
        """Number of reconfiguration epochs (including the initial one)."""
        return len(self.epochs)

    @property
    def mean_reconfig_wall_s(self) -> float:
        """Mean wall-clock reconfiguration latency across epochs."""
        if not self.epochs:
            return 0.0
        return math.fsum(e.reconfig_wall_s for e in self.epochs) / len(
            self.epochs
        )


def campus_network(
    n_aps: int = 100,
    spacing_m: float = 40.0,
    jitter_m: float = 5.0,
    seed: int = 0,
) -> Network:
    """A campus-scale geometric deployment: a jittered AP grid.

    Purely geometric (no explicit conflicts), so the footnote-5
    interference graph follows from propagation — the deployment style
    that exercises the incremental hearing-matrix path of
    ``CompiledNetwork.apply_churn``.
    """
    if n_aps <= 0:
        raise ConfigurationError(f"n_aps must be positive, got {n_aps}")
    if spacing_m <= 0:
        raise ConfigurationError(f"spacing must be positive, got {spacing_m}")
    rng = make_rng(seed)
    network = Network()
    side = int(math.ceil(math.sqrt(n_aps)))
    for index in range(n_aps):
        row, col = divmod(index, side)
        x = col * spacing_m + float(rng.uniform(-jitter_m, jitter_m))
        y = row * spacing_m + float(rng.uniform(-jitter_m, jitter_m))
        network.add_ap(f"ap{index}", position=(x, y))
    return network


def place_client_uniform(
    network: Network, client_id: str, rng: np.random.Generator
) -> None:
    """Register an arriving client uniformly inside the AP bounding box.

    The default ``client_factory``: geometric placement over the convex
    extent of the deployment, so link SNRs follow from path loss exactly
    as they do for the APs.
    """
    xs = [p[0] for p in (network.ap(a).position for a in network.ap_ids) if p]
    ys = [p[1] for p in (network.ap(a).position for a in network.ap_ids) if p]
    if not xs:
        raise ConfigurationError(
            "place_client_uniform needs positioned APs; pass a custom "
            "client_factory for SNR-specified topologies"
        )
    position = (
        float(rng.uniform(min(xs), max(xs))),
        float(rng.uniform(min(ys), max(ys))),
    )
    network.add_client(client_id, position=position)


def place_client_random_links(
    network: Network, client_id: str, rng: np.random.Generator
) -> None:
    """Register an arriving client with random link SNRs to a few APs.

    The ``client_factory`` for SNR-specified (explicit-conflict)
    topologies where APs have no positions: the client hears one to
    three APs at SNRs spanning the MCS range.
    """
    ap_ids = network.ap_ids
    if not ap_ids:
        raise ConfigurationError("network has no APs to link the client to")
    network.add_client(client_id)
    n_heard = int(rng.integers(1, min(3, len(ap_ids)) + 1))
    heard = rng.choice(len(ap_ids), size=n_heard, replace=False)
    for ap_index in heard:
        network.set_link_snr(
            ap_ids[int(ap_index)], client_id, float(rng.uniform(2.0, 32.0))
        )


def run_timeline(
    network: Network,
    plan: ChannelPlan,
    config: TimelineConfig,
    model: Optional[ThroughputModel] = None,
    client_factory: Optional[ClientFactory] = None,
) -> TimelineResult:
    """Replay a campus day of association churn against the controller.

    ``network`` supplies the APs (clients arrive and depart per the
    session model). Every churn event patches the controller's compiled
    snapshot incrementally; Algorithm 2 re-runs warm-started every
    ``config.period_s`` (and, optionally, every N admissions).
    Throughput between measurements is piecewise constant;
    re-allocations zero it for the configured downtime, as in the
    long-run model.
    """
    model = model if model is not None else ThroughputModel()
    factory = client_factory if client_factory is not None else place_client_uniform
    rng_place = make_rng(config.seed + 1)
    tracer = active_tracer()
    clock = monotonic_clock()

    acorn = Acorn(network, plan, model, seed=config.seed)
    acorn.assign_initial_channels()

    events: List[Tuple[float, int, int, str]] = []
    sequence = 0

    def push(when: float, kind: int, payload: str) -> None:
        nonlocal sequence
        heapq.heappush(events, (when, kind, sequence, payload))
        sequence += 1

    session_events = list(
        synthesize_association_events(
            config.horizon_s,
            config.arrival_rate_per_s,
            median_s=config.median_session_s,
            p90_s=config.p90_session_s,
            rng=make_rng(config.seed),
        )
    )
    departures = {
        event.client_id: event.departure_s for event in session_events
    }
    for event in session_events:
        push(event.arrival_s, _ARRIVAL, event.client_id)
    next_epoch = config.period_s
    while next_epoch < config.horizon_s:
        push(next_epoch, _EPOCH, "")
        next_epoch += config.period_s

    result = TimelineResult(
        config=config,
        mean_throughput_mbps=0.0,
        n_arrivals=0,
        n_departures=0,
        n_rejected=0,
        n_events=0,
        peak_clients=0,
        downtime_s=0.0,
    )
    sim_clock = 0.0
    weighted_sum = 0.0
    current_throughput = 0.0
    arrivals_since_epoch = 0

    def advance_to(when: float) -> None:
        nonlocal sim_clock, weighted_sum
        weighted_sum += current_throughput * (when - sim_clock)
        sim_clock = when

    def measure() -> float:
        report = model.evaluate(network, acorn.graph)
        return float(report.total_mbps)

    def run_epoch(trigger: str) -> None:
        nonlocal current_throughput
        t0 = clock()
        allocation = acorn.allocate()
        reconfig_wall_s = clock() - t0
        report = model.evaluate(network, acorn.graph)
        active = [
            mbps
            for ap_id, mbps in sorted(report.per_ap_mbps.items())
            if network.clients_of(ap_id)
        ]
        jain = jain_index(active) if active else 1.0
        record = EpochRecord(
            t_s=sim_clock,
            trigger=trigger,
            total_mbps=float(report.total_mbps),
            jain=float(jain),
            n_clients=len(network.associations),
            n_rounds=int(allocation.rounds),
            reconfig_wall_s=reconfig_wall_s,
        )
        result.epochs.append(record)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter(f"timeline.epochs.{trigger}").inc()
            metrics.series("timeline.throughput_mbps").append(
                sim_clock, record.total_mbps
            )
            metrics.series("timeline.fairness").append(sim_clock, record.jain)
            metrics.series("timeline.reconfig_s").append(
                sim_clock, record.reconfig_wall_s
            )
            metrics.histogram("timeline.reconfig_seconds").observe(
                record.reconfig_wall_s
            )
        if trigger != "initial":
            downtime = min(
                config.reallocation_downtime_s, config.horizon_s - sim_clock
            )
            result.downtime_s += downtime
            current_throughput = 0.0
            advance_to(sim_clock + downtime)
        current_throughput = record.total_mbps
        result.samples.append((sim_clock, current_throughput))

    run_epoch("initial")

    while events:
        when, kind, _, payload = heapq.heappop(events)
        if when >= config.horizon_s:
            break
        advance_to(when)
        result.n_events += 1
        if kind == _ARRIVAL:
            factory(network, payload, rng_place)
            try:
                acorn.admit_client(payload, incremental=True)
            except AssociationError:
                # The Eq. 4 scan already patched the arrival into the
                # compiled snapshot; undo both the registration and the
                # patch to restore exact pre-arrival state.
                network.remove_client(payload)
                acorn.apply_churn(removed_clients=(payload,))
                result.n_rejected += 1
                if tracer.enabled:
                    tracer.metrics.counter("timeline.rejections").inc()
                continue
            result.n_arrivals += 1
            result.peak_clients = max(
                result.peak_clients, len(network.associations)
            )
            if tracer.enabled:
                tracer.metrics.counter("timeline.arrivals").inc()
            push(departures[payload], _DEPARTURE, payload)
            arrivals_since_epoch += 1
            if (
                config.allocate_every_arrivals
                and arrivals_since_epoch >= config.allocate_every_arrivals
            ):
                arrivals_since_epoch = 0
                run_epoch("event")
                continue
        elif kind == _DEPARTURE:
            network.disassociate(payload)
            network.remove_client(payload)
            acorn.apply_churn(removed_clients=(payload,))
            result.n_departures += 1
            if tracer.enabled:
                tracer.metrics.counter("timeline.departures").inc()
        else:  # _EPOCH
            arrivals_since_epoch = 0
            run_epoch("periodic")
            continue
        if config.measure_every_event:
            current_throughput = measure()
            result.samples.append((sim_clock, current_throughput))

    advance_to(config.horizon_s)
    result.mean_throughput_mbps = weighted_sum / config.horizon_s
    return result
